//! The discrete-event C/R simulation of one application run.
//!
//! One [`CrSim`] executes one application under one C/R model against one
//! pre-generated [`FailureTrace`]. The application is modeled at the
//! granularity the protocols need: a work accumulator (useful compute
//! seconds toward `compute_hours`), a blocking-state machine, per-node
//! proactive actions, and the multi-level checkpoint store.
//!
//! ### State machine
//!
//! ```text
//!            CkptDue                     BbWriteDone
//! Computing ─────────► BbCkpt ──────────────────────────► Computing
//!     │  prediction (P1/P2, short lead)                       ▲
//!     ├────────────► Round (phase 1 ► phase 2) ───────────────┤
//!     │  prediction (M1)                                      │
//!     ├────────────► Safeguard ───────────────────────────────┤
//!     │  failure                              RecoveryDone    │
//!     └────────────► Recovering ──────────────────────────────┘
//! ```
//!
//! Live migration runs *concurrently* with any state (the application
//! keeps executing at a small slowdown); a p-ckpt round aborts in-flight
//! migrations per the Fig. 5 state diagram.
//!
//! ### Accounting invariant
//!
//! Wall time decomposes exactly into ideal compute + checkpoint bucket +
//! LM slowdown + recomputation + recovery; the end-of-run accounting debug-asserts
//! the residual is zero, and `metrics::RunResult::accounting_residual_secs`
//! exposes it to tests.

use pckpt_desim::{Ctx, EventId, Model, SimDuration, SimTime, Simulation, SmallMap};
use pckpt_failure::{FailureTrace, LeadTimeModel, RateEstimator};
use pckpt_simobs::{kind as obskind, Recorder, RunObs};

use crate::config::{ModelKind, SimParams};
use crate::metrics::{OverheadLedger, RunResult};
use crate::oci;
use crate::protocol::{Phase, PckptRound, Vulnerable};
use crate::tracer::{RunTrace, TraceKind};

/// What blocks the application right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AppState {
    Computing,
    BbCkpt,
    Round,
    Safeguard,
    Recovering,
    Done,
}

/// Events of the C/R simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Ev {
    /// Periodic checkpoint is due (epoch-guarded).
    CkptDue(u32),
    /// The synchronous BB write finished (epoch-guarded).
    BbWriteDone(u32),
    /// An asynchronous BB→PFS drain finished (drain-generation-guarded).
    DrainDone(u32),
    /// All useful work is done (epoch-guarded).
    WorkComplete(u32),
    /// A prediction is delivered. `Some(idx)` = genuine failure index,
    /// `None` = false positive `fp` index in the second field.
    Prediction(Option<usize>, usize),
    /// Genuine failure `idx` strikes.
    Failure(usize),
    /// The safeguard commit finished (epoch-guarded).
    SafeguardDone(u32),
    /// A live migration finished (node, LM-sequence-guarded).
    LmDone(u32, u64),
    /// The current p-ckpt phase-1 writer committed (epoch-guarded).
    Phase1WriterDone(u32),
    /// The p-ckpt phase-2 collective commit finished (epoch-guarded).
    Phase2Done(u32),
    /// Recovery finished (epoch-guarded).
    RecoveryDone(u32),
    /// A fluid-mode PFS transfer may have completed (stamped with the
    /// fluid link's epoch; stale ticks are dropped).
    PfsTick(u64),
}

/// Stable numeric code for [`obskind::STATE`] trace records.
fn state_code(state: AppState) -> u64 {
    match state {
        AppState::Computing => 0,
        AppState::BbCkpt => 1,
        AppState::Round => 2,
        AppState::Safeguard => 3,
        AppState::Recovering => 4,
        AppState::Done => 5,
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingPrediction {
    node: u32,
    fail_time: SimTime,
    /// Where the predictor *believes* the failure will strike (differs
    /// from `fail_time` under lead-time estimation error).
    est_fail_time: SimTime,
    covered: Option<Mechanism>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mechanism {
    Pckpt,
    Safeguard,
}

#[derive(Debug, Clone, Copy)]
struct ActiveLm {
    seq: u64,
    fail_idx: Option<usize>,
    deadline: SimTime,
}

/// The per-run C/R simulation model.
pub struct CrSim {
    p: SimParams,
    trace: FailureTrace,

    // Precomputed durations (seconds).
    t_bb_write: f64,
    t_bb_read: f64,
    t_pfs_all_write: f64,
    t_pfs_all_read: f64,
    t_pfs_single: f64,
    t_drain: f64,
    t_barrier: f64,
    theta: f64,
    sigma: f64,

    // Application progress.
    state: AppState,
    state_entered: SimTime,
    epoch: u32,
    work_done: f64,
    target: f64,
    seg_start: SimTime,
    seg_rate: f64,

    // Periodic checkpointing.
    oci_secs: f64,
    next_ckpt_work: f64,
    inflight_bb_level: f64,
    drain_gen: u32,
    drain_level: f64,

    // Checkpoint store: best recoverable work levels per path.
    best_bb_pfs: f64,
    best_pfs_all: f64,

    // Proactive machinery.
    round: Option<PckptRound>,
    /// A finished/aborted round parked for reuse: `request_pckpt` resets
    /// it instead of allocating a fresh queue + commit lists.
    spare_round: Option<PckptRound>,
    safeguard_level: f64,
    active_lms: SmallMap<u32, ActiveLm>,
    lm_seq: u64,
    pending: SmallMap<usize, PendingPrediction>,
    failure_events: Vec<Option<EventId>>,
    recovery_level: f64,
    recovery_dur: f64,

    estimator: RateEstimator,
    ledger: OverheadLedger,
    finished_at: Option<SimTime>,
    /// RNG for the background-traffic extension (per-operation bandwidth
    /// shares). Deterministic default; the runner injects a per-run
    /// stream via [`CrSim::with_bg_rng`].
    bg_rng: pckpt_simrng::SimRng,
    /// Fluid-mode PFS state (`None` in analytic mode).
    fluid: Option<crate::iosim::FluidPfs>,
    /// Writer weight of the asynchronous drain (fluid mode).
    drain_weight: f64,
    /// Wall time recovery began (fluid mode: completion floors).
    recovery_started: SimTime,
    /// Earliest instant the current recovery may complete (fluid mode:
    /// replacement-node delay plus any BB-read component).
    recovery_floor: SimTime,
    /// Whether the current recovery restores everything from the PFS
    /// (fluid mode: restart path selection).
    recovery_all_pfs: bool,
    /// Optional run trace (enabled by [`CrSim::run_traced`]).
    tracer: Option<RunTrace>,
    /// Always-on fixed-size run metrics (no heap storage; folded into
    /// [`RunResult`] by [`CrSim::result`]).
    obs: RunObs,
    /// Structured trace sink; zero-sized no-op unless the `trace`
    /// feature is enabled and a live recorder is installed.
    rec: Recorder,
    /// When the current p-ckpt phase-1 writer started (obs latency).
    phase1_started: SimTime,
    /// Reused buffer for fluid-mode completion batches (hot path: one
    /// `PfsTick` per transfer completion; no per-tick allocation).
    pfs_done_scratch: Vec<crate::iosim::PfsOp>,
    /// Reused buffer for the re-arm sweep after computing resumes.
    rearm_scratch: Vec<(usize, u32, SimTime)>,
    /// Reused buffer for aborting in-flight migrations into a round.
    lm_scratch: Vec<(u32, ActiveLm)>,
    /// Reused buffer for the coverage-retraction sweep on mid-round
    /// failures.
    commit_scratch: Vec<usize>,
    /// The initial OCI (recomputed rates may adjust it mid-run); kept so
    /// [`CrSim::reset_for_run`] can restore the exact fresh-build state.
    oci0: f64,
}

impl CrSim {
    /// Builds a simulation of `params` against a pre-generated trace.
    ///
    /// `leads` is only needed to evaluate σ for Eq. 2; the trace already
    /// carries every sampled lead time.
    pub fn new(params: SimParams, trace: FailureTrace, leads: &LeadTimeModel) -> Self {
        params.validate();
        let per_node = params.per_node_bytes();
        let n = params.app.nodes;
        let io = &params.io;
        let theta = params.theta_secs();
        let sigma = if params.model.oci_uses_sigma() {
            oci::sigma_with_policy(
                params.sigma_policy,
                leads,
                &params.predictor,
                theta,
                params.lead_scale,
            )
        } else {
            0.0
        };
        let prior_rate = params.distribution.job_rate(n);
        let t_bb_write = io.bb.write_secs(per_node);
        let oci0 = Self::compute_oci(&params, t_bb_write, prior_rate, sigma);
        let drain_nodes = params.drain_concurrency.min(n);
        let failure_count = trace.failures.len();
        Self {
            t_bb_write,
            t_bb_read: io.bb.read_secs(per_node),
            t_pfs_all_write: io.pfs.write_secs(n, per_node),
            t_pfs_all_read: io.pfs.read_secs(n, per_node),
            t_pfs_single: io.pfs.single_node_write_secs(per_node),
            t_drain: n as f64 * per_node / io.pfs.aggregate_write_bw(drain_nodes, per_node),
            t_barrier: io.net.collective_secs(n as usize),
            theta,
            sigma,
            state: AppState::Computing,
            state_entered: SimTime::ZERO,
            epoch: 0,
            work_done: 0.0,
            target: params.app.compute_hours * 3600.0,
            seg_start: SimTime::ZERO,
            seg_rate: 1.0,
            oci_secs: oci0,
            next_ckpt_work: oci0,
            inflight_bb_level: 0.0,
            drain_gen: 0,
            drain_level: 0.0,
            best_bb_pfs: 0.0,
            best_pfs_all: 0.0,
            round: None,
            spare_round: None,
            safeguard_level: 0.0,
            active_lms: SmallMap::new(),
            lm_seq: 0,
            pending: SmallMap::new(),
            failure_events: vec![None; failure_count],
            recovery_level: 0.0,
            recovery_dur: 0.0,
            estimator: RateEstimator::new(params.rate_window_hours, prior_rate, 3),
            ledger: OverheadLedger::default(),
            finished_at: None,
            bg_rng: pckpt_simrng::SimRng::seed_from(0x0BAC_6007),
            fluid: match params.pfs_mode {
                crate::iosim::PfsMode::Analytic => None,
                crate::iosim::PfsMode::Fluid => {
                    Some(crate::iosim::FluidPfs::new(&params.io.pfs, per_node))
                }
            },
            drain_weight: drain_nodes as f64,
            recovery_started: SimTime::ZERO,
            recovery_floor: SimTime::ZERO,
            recovery_all_pfs: false,
            tracer: None,
            obs: RunObs::default(),
            rec: Recorder::disabled(),
            phase1_started: SimTime::ZERO,
            pfs_done_scratch: Vec::new(),
            rearm_scratch: Vec::new(),
            lm_scratch: Vec::new(),
            commit_scratch: Vec::new(),
            oci0,
            p: params,
            trace,
        }
    }

    /// Rewinds the simulation to its just-built state for a new run
    /// against `trace`, retaining every internal allocation (trace
    /// storage, maps, scratch buffers, the fluid link and its memoized
    /// capacity table, a parked p-ckpt round).
    ///
    /// After this call the model behaves exactly like
    /// `CrSim::new(params, trace, leads).with_bg_rng(bg_rng)` — the
    /// arena-reuse campaign path depends on that equivalence (checked by
    /// a proptest in the workspace test suite).
    pub fn reset_for_run(&mut self, trace: &FailureTrace, bg_rng: pckpt_simrng::SimRng) {
        // Field-wise Vec::clone_from reuses the existing buffers; the
        // struct-level clone_from would fall back on `*self = clone()`
        // (derived Clone has no clone_from specialization) and reallocate.
        self.trace.failures.clone_from(&trace.failures);
        self.trace.false_positives.clone_from(&trace.false_positives);
        self.state = AppState::Computing;
        self.state_entered = SimTime::ZERO;
        self.epoch = 0;
        self.work_done = 0.0;
        self.seg_start = SimTime::ZERO;
        self.seg_rate = 1.0;
        self.oci_secs = self.oci0;
        self.next_ckpt_work = self.oci0;
        self.inflight_bb_level = 0.0;
        self.drain_gen = 0;
        self.drain_level = 0.0;
        self.best_bb_pfs = 0.0;
        self.best_pfs_all = 0.0;
        if let Some(r) = self.round.take() {
            self.spare_round = Some(r);
        }
        self.safeguard_level = 0.0;
        self.active_lms.clear();
        self.lm_seq = 0;
        self.pending.clear();
        self.failure_events.clear();
        self.failure_events.resize(self.trace.failures.len(), None);
        self.recovery_level = 0.0;
        self.recovery_dur = 0.0;
        self.estimator.reset();
        self.ledger = OverheadLedger::default();
        self.finished_at = None;
        self.bg_rng = bg_rng;
        if let Some(fluid) = self.fluid.as_mut() {
            fluid.reset();
        }
        self.recovery_started = SimTime::ZERO;
        self.recovery_floor = SimTime::ZERO;
        self.recovery_all_pfs = false;
        self.tracer = None;
        // The recorder stays installed: per-run recordings are cut by the
        // owner via `Recorder::take`/`clear` between runs.
        self.obs.reset();
        self.phase1_started = SimTime::ZERO;
    }

    /// Installs a structured trace recorder on the model and its fluid
    /// link (the campaign runner wires the event queue separately). A
    /// no-op unless the `trace` feature is enabled.
    pub fn set_recorder(&mut self, rec: Recorder) {
        if let Some(fluid) = self.fluid.as_mut() {
            fluid.set_recorder(rec.clone());
        }
        self.rec = rec;
    }

    /// The always-on per-run observability metrics accumulated so far.
    pub fn obs(&self) -> &RunObs {
        &self.obs
    }

    /// Records a trace event: always feeds the structured simobs stream
    /// and the fixed-size run metrics; additionally feeds the legacy
    /// allocating tracer when one is enabled via [`CrSim::run_traced`].
    fn trace_ev(&mut self, at: SimTime, kind: TraceKind) {
        self.observe(at, &kind);
        if let Some(tr) = self.tracer.as_mut() {
            tr.push(at, kind);
        }
    }

    /// Maps one trace event onto the structured recorder and the run
    /// metrics. Allocation-free; every `rec` call compiles to nothing
    /// without the `trace` feature.
    fn observe(&mut self, at: SimTime, kind: &TraceKind) {
        let t = at.as_nanos();
        match *kind {
            // State transitions are emitted by `enter_state` directly
            // (the TraceKind variant is only built when the legacy
            // tracer is on).
            TraceKind::State(_) => {}
            TraceKind::Prediction {
                node,
                lead_secs,
                genuine,
            } => self.rec.emit(
                t,
                obskind::PREDICTION,
                u64::from(node) | (u64::from(genuine) << 32),
                lead_secs.to_bits(),
            ),
            TraceKind::LmStart(n) => self.rec.emit(t, obskind::LM_START, n.into(), 0),
            TraceKind::LmDone(n) => self.rec.emit(t, obskind::LM_COMMIT, n.into(), 0),
            TraceKind::LmAbort(n) => self.rec.emit(t, obskind::LM_ABORT, n.into(), 0),
            TraceKind::RoundStart => self.rec.emit(t, obskind::ROUND_START, 0, 0),
            TraceKind::Phase1Commit(n) => {
                self.obs
                    .lat_phase1
                    .record(at.since(self.phase1_started).as_nanos());
                // Payload b: the phase-1 backlog at commit time — how many
                // vulnerable nodes were still waiting behind this writer.
                let queued = self.round.as_ref().map_or(0, |r| r.queued_count() as u64);
                self.rec.emit(t, obskind::PHASE1_COMMIT, n.into(), queued);
            }
            TraceKind::RoundComplete => {
                self.obs
                    .lat_pfs_full
                    .record(at.since(self.state_entered).as_nanos());
                self.rec.emit(t, obskind::ROUND_COMPLETE, 0, 0);
            }
            TraceKind::SafeguardStart => self.rec.emit(t, obskind::SAFEGUARD_START, 0, 0),
            TraceKind::SafeguardDone => {
                self.obs
                    .lat_pfs_full
                    .record(at.since(self.state_entered).as_nanos());
                self.rec.emit(t, obskind::SAFEGUARD_DONE, 0, 0);
            }
            TraceKind::BbCkpt => {
                self.obs
                    .lat_bb
                    .record(at.since(self.state_entered).as_nanos());
                self.rec.emit(t, obskind::BB_CKPT, 0, 0);
            }
            TraceKind::DrainDone => self.rec.emit(t, obskind::DRAIN_DONE, 0, 0),
            TraceKind::Failure { node, mitigated } => self.rec.emit(
                t,
                obskind::FAILURE,
                u64::from(node) | (u64::from(mitigated) << 32),
                0,
            ),
            TraceKind::RecoveryStart { lost_secs } => {
                self.obs
                    .recomp
                    .record(SimDuration::from_secs(lost_secs).as_nanos());
                self.rec
                    .emit(t, obskind::RECOVERY_START, 0, lost_secs.to_bits());
            }
            TraceKind::RecoveryDone => self.rec.emit(t, obskind::RECOVERY_DONE, 0, 0),
            TraceKind::Complete => self.rec.emit(t, obskind::COMPLETE, 0, 0),
        }
    }

    /// Runs the simulation with tracing enabled, returning the result and
    /// the recorded story of the run.
    pub fn run_traced(mut self) -> (RunResult, RunTrace) {
        self.tracer = Some(RunTrace::new());
        let budget = 10_000_000;
        let rec = self.rec.clone();
        let mut sim = Simulation::new(self).with_event_budget(budget);
        sim.set_recorder(rec);
        sim.run();
        let mut model = sim.into_model();
        // run_traced installs the tracer above. simlint: allow(no-unwrap-in-lib)
        let trace = model.tracer.take().expect("tracing was enabled");
        (model.finish(), trace)
    }

    /// Injects engine-level queue statistics into the obs snapshot.
    ///
    /// The queue lives outside the model, so the campaign runner (which
    /// measures these around `run_with_queue`) hands them in before
    /// reading [`CrSim::result`]. One-shot [`CrSim::run`] paths leave
    /// them zero — queue statistics are campaign-level metrics.
    pub fn set_queue_obs(&mut self, handled: u64, scheduled: u64, depth_hwm: u64) {
        self.obs.events_handled = handled;
        self.obs.events_scheduled = scheduled;
        self.obs.queue_depth_hwm = depth_hwm;
    }

    // ------------------------------------------------------------------
    // Fluid-mode plumbing.
    // ------------------------------------------------------------------

    /// Reschedules the completion tick after any fluid mutation.
    fn fluid_reschedule(&mut self, ctx: &mut Ctx<'_, Ev>) {
        let Some(fluid) = self.fluid.as_ref() else {
            return;
        };
        if let Some(at) = fluid.next_completion(ctx.now()) {
            ctx.schedule_at(at.max(ctx.now()), Ev::PfsTick(fluid.epoch()));
        }
    }

    fn fluid_start(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        op: crate::iosim::PfsOp,
        bytes: f64,
        weight: f64,
    ) {
        let now = ctx.now();
        self.fluid
            .as_mut()
            // Callers are gated on fluid mode. simlint: allow(no-unwrap-in-lib)
            .expect("fluid op in analytic mode")
            .start(now, op, bytes, weight);
        self.fluid_reschedule(ctx);
    }

    fn on_pfs_tick(&mut self, ctx: &mut Ctx<'_, Ev>, epoch: u64) {
        use crate::iosim::PfsOp;
        let now = ctx.now();
        let Some(fluid) = self.fluid.as_mut() else {
            return;
        };
        if fluid.epoch() != epoch {
            return; // superseded by a later mutation
        }
        let mut done = std::mem::take(&mut self.pfs_done_scratch);
        fluid.take_completed_into(now, &mut done);
        for &op in &done {
            match op {
                PfsOp::Drain => {
                    self.trace_ev(now, TraceKind::DrainDone);
                    self.best_bb_pfs = self.best_bb_pfs.max(self.drain_level);
                }
                PfsOp::Safeguard => self.on_safeguard_done(ctx),
                PfsOp::Phase1 => self.on_phase1_writer_done(ctx),
                PfsOp::Phase2 => self.on_phase2_done(ctx),
                PfsOp::RecoveryRead | PfsOp::ReplacementRead => {
                    debug_assert_eq!(self.state, AppState::Recovering);
                    if now < self.recovery_floor {
                        // The replacement node / BB restores are still in
                        // flight; finish at the floor.
                        ctx.schedule_at(self.recovery_floor, Ev::RecoveryDone(self.epoch));
                    } else {
                        self.on_recovery_done(ctx);
                    }
                }
            }
        }
        done.clear();
        self.pfs_done_scratch = done;
        self.fluid_reschedule(ctx);
    }

    /// Injects the RNG stream used for background-traffic sampling (no
    /// effect when `background_traffic` is `None`).
    pub fn with_bg_rng(mut self, rng: pckpt_simrng::SimRng) -> Self {
        self.bg_rng = rng;
        self
    }

    /// Duration multiplier for one synchronous PFS operation under the
    /// background-traffic extension (1.0 when disabled).
    fn sync_pfs_slowdown(&mut self) -> f64 {
        match self.p.background_traffic {
            None => 1.0,
            Some(bt) => 1.0 / bt.sample_share(&mut self.bg_rng),
        }
    }

    fn compute_oci(p: &SimParams, t_bb: f64, rate_per_hour: f64, sigma: f64) -> f64 {
        let raw = if p.model.oci_uses_sigma() {
            oci::lm_adjusted_oci_secs(t_bb, rate_per_hour, sigma)
        } else {
            oci::young_oci_secs(t_bb, rate_per_hour)
        };
        // Clamp: checkpointing more often than the write itself is
        // senseless; pausing longer than the whole job is equivalent to
        // never checkpointing again.
        raw.clamp(t_bb, p.app.compute_hours * 3600.0)
    }

    /// Runs the simulation to completion and returns the result.
    pub fn run(self) -> RunResult {
        let budget = 10_000_000;
        let rec = self.rec.clone();
        let mut sim = Simulation::new(self).with_event_budget(budget);
        sim.set_recorder(rec);
        sim.run();
        sim.into_model().finish()
    }

    fn finish(self) -> RunResult {
        self.result()
    }

    /// The result of a completed run, without consuming the model — the
    /// arena-reuse path reads it between [`CrSim::reset_for_run`] cycles.
    ///
    /// Panics if the simulation has not run to completion.
    pub fn result(&self) -> RunResult {
        let finished_at = self
            .finished_at
            // Horizon misconfiguration; actionable message. simlint: allow(no-unwrap-in-lib)
            .expect("simulation ended before the application completed — raise the horizon");
        let result = RunResult {
            wall_secs: finished_at.as_secs(),
            ideal_secs: self.target,
            final_oci_secs: self.oci_secs,
            ledger: self.ledger.clone(),
            obs: self.obs.clone(),
        };
        debug_assert!(
            result.accounting_residual_secs().abs() < 1.0,
            "accounting residual {:.3}s (wall {:.1}s)",
            result.accounting_residual_secs(),
            result.wall_secs
        );
        result
    }

    /// The σ the OCI uses (0 for non-LM models).
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The LM latency θ, seconds.
    pub fn theta_secs(&self) -> f64 {
        self.theta
    }

    /// The OCI currently in force, seconds.
    pub fn oci_secs(&self) -> f64 {
        self.oci_secs
    }

    // ------------------------------------------------------------------
    // Compute-segment bookkeeping.
    // ------------------------------------------------------------------

    fn current_rate(&self) -> f64 {
        if self.active_lms.is_empty() {
            1.0
        } else {
            1.0 - self.p.lm_slowdown
        }
    }

    fn close_segment(&mut self, now: SimTime) {
        debug_assert_eq!(self.state, AppState::Computing);
        let dt = now.since(self.seg_start).as_secs();
        self.work_done += dt * self.seg_rate;
        self.ledger.lm_slowdown_secs += dt * (1.0 - self.seg_rate);
        self.seg_start = now;
    }

    fn schedule_compute_events(&mut self, ctx: &mut Ctx<'_, Ev>) {
        debug_assert_eq!(self.state, AppState::Computing);
        self.seg_start = ctx.now();
        self.seg_rate = self.current_rate();
        let rate = self.seg_rate;
        let to_target = (self.target - self.work_done).max(0.0) / rate;
        ctx.schedule_in(SimDuration::from_secs(to_target), Ev::WorkComplete(self.epoch));
        if self.next_ckpt_work < self.target {
            let to_ckpt = (self.next_ckpt_work - self.work_done).max(0.0) / rate;
            ctx.schedule_in(SimDuration::from_secs(to_ckpt), Ev::CkptDue(self.epoch));
        }
    }

    /// Rate changed while computing (LM started/stopped): close the
    /// segment and re-schedule the work-threshold events.
    fn rate_changed(&mut self, ctx: &mut Ctx<'_, Ev>) {
        if self.state == AppState::Computing {
            self.close_segment(ctx.now());
            self.epoch += 1;
            self.schedule_compute_events(ctx);
        }
    }

    /// Leaves the current state at `now`, attributing the elapsed time to
    /// the right overhead bucket.
    fn leave_state(&mut self, now: SimTime) {
        let dt = now.since(self.state_entered).as_secs();
        match self.state {
            AppState::Computing => self.close_segment(now),
            AppState::BbCkpt | AppState::Round | AppState::Safeguard => {
                self.ledger.ckpt_secs += dt;
            }
            AppState::Recovering => self.ledger.recovery_secs += dt,
            AppState::Done => unreachable!("no transitions out of Done"),
        }
        self.epoch += 1;
    }

    fn enter_state(&mut self, ctx: &mut Ctx<'_, Ev>, state: AppState) {
        self.rec
            .emit(ctx.now().as_nanos(), obskind::STATE, state_code(state), 0);
        if self.tracer.is_some() {
            let name = match state {
                AppState::Computing => "computing",
                AppState::BbCkpt => "bb-checkpoint",
                AppState::Round => "p-ckpt round",
                AppState::Safeguard => "safeguard",
                AppState::Recovering => "recovering",
                AppState::Done => "done",
            };
            self.trace_ev(ctx.now(), TraceKind::State(name));
        }
        self.state = state;
        self.state_entered = ctx.now();
        if state == AppState::Computing {
            self.schedule_compute_events(ctx);
        }
    }

    /// Transitions into Computing and re-arms any still-pending predicted
    /// failures that never got a proactive action.
    fn resume_computing(&mut self, ctx: &mut Ctx<'_, Ev>) {
        self.next_ckpt_work = self.work_done + self.oci_secs;
        self.enter_state(ctx, AppState::Computing);
        self.rearm_pending(ctx);
    }

    fn rearm_pending(&mut self, ctx: &mut Ctx<'_, Ev>) {
        if !self.p.model.uses_prediction() {
            return;
        }
        let now = ctx.now();
        // The buffer is taken out of `self` for the duration of the sweep
        // because `dispatch_prediction` needs `&mut self`.
        let mut rearm = std::mem::take(&mut self.rearm_scratch);
        rearm.clear();
        rearm.extend(
            self.pending
                .iter()
                .filter(|(_, pp)| {
                    pp.covered.is_none() && pp.fail_time > now && pp.est_fail_time > now
                })
                .map(|(&idx, pp)| (idx, pp.node, pp.est_fail_time)),
        );
        for &(idx, node, est_fail_time) in &rearm {
            if self.state != AppState::Computing && self.round.is_none() {
                break; // an earlier re-arm already started a blocking action
            }
            let lead = est_fail_time.since(now).as_secs();
            self.dispatch_prediction(ctx, node, lead, Some(idx), true);
        }
        self.rearm_scratch = rearm;
    }

    // ------------------------------------------------------------------
    // Prediction handling.
    // ------------------------------------------------------------------

    fn on_prediction(&mut self, ctx: &mut Ctx<'_, Ev>, fail_idx: Option<usize>, fp_idx: usize) {
        if self.state == AppState::Done {
            return;
        }
        let (node, lead) = match fail_idx {
            Some(idx) => {
                let f = &self.trace.failures[idx];
                let node = f.node;
                let fail_time = SimTime::from_hours(f.time_hours);
                // The C/R model acts on the *estimated* lead; the failure
                // itself fires at the actual time regardless.
                let est_fail_time = ctx.now() + SimDuration::from_secs(f.est_lead_secs.max(0.0));
                self.pending.insert(
                    idx,
                    PendingPrediction {
                        node,
                        fail_time,
                        est_fail_time,
                        covered: None,
                    },
                );
                (node, f.est_lead_secs)
            }
            None => {
                let fp = &self.trace.false_positives[fp_idx];
                (fp.node, fp.lead_secs)
            }
        };
        self.trace_ev(
            ctx.now(),
            TraceKind::Prediction {
                node,
                lead_secs: lead,
                genuine: fail_idx.is_some(),
            },
        );
        if !self.p.model.uses_prediction() {
            return;
        }
        self.dispatch_prediction(ctx, node, lead, fail_idx, false);
    }

    /// Chooses and launches the proactive action for a prediction.
    /// `rearmed` marks re-dispatches after a recovery (they must not
    /// double-count FP actions).
    fn dispatch_prediction(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        node: u32,
        lead_secs: f64,
        fail_idx: Option<usize>,
        rearmed: bool,
    ) {
        let deadline = ctx.now() + SimDuration::from_secs(lead_secs.max(0.0));
        match self.p.model {
            ModelKind::B => {}
            ModelKind::M1 => self.request_safeguard(ctx, fail_idx, rearmed),
            ModelKind::M2 => {
                if lead_secs > self.theta {
                    self.start_lm(ctx, node, fail_idx, deadline, rearmed);
                }
                // Too short for LM and M2 has no fallback: the failure
                // will strike unmitigated.
            }
            ModelKind::P1 => self.request_pckpt(ctx, node, deadline, fail_idx, rearmed),
            ModelKind::P2 => {
                if self.round.is_some() {
                    // A round is already blocking everyone; joining it is
                    // strictly faster than migrating.
                    self.request_pckpt(ctx, node, deadline, fail_idx, rearmed);
                } else if lead_secs > self.theta {
                    self.start_lm(ctx, node, fail_idx, deadline, rearmed);
                } else {
                    self.request_pckpt(ctx, node, deadline, fail_idx, rearmed);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Live migration.
    // ------------------------------------------------------------------

    fn start_lm(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        node: u32,
        fail_idx: Option<usize>,
        deadline: SimTime,
        rearmed: bool,
    ) {
        if self.active_lms.contains_key(&node) {
            return; // already migrating this node
        }
        self.lm_seq += 1;
        let seq = self.lm_seq;
        self.active_lms.insert(
            node,
            ActiveLm {
                seq,
                fail_idx,
                deadline,
            },
        );
        self.ledger.lm_started += 1;
        if fail_idx.is_none() && !rearmed {
            self.ledger.false_positive_actions += 1;
        }
        self.trace_ev(ctx.now(), TraceKind::LmStart(node));
        ctx.schedule_in(SimDuration::from_secs(self.theta), Ev::LmDone(node, seq));
        self.rate_changed(ctx);
    }

    fn on_lm_done(&mut self, ctx: &mut Ctx<'_, Ev>, node: u32, seq: u64) {
        let Some(lm) = self.active_lms.get(&node) else {
            return; // aborted
        };
        if lm.seq != seq {
            return; // stale event from a superseded migration
        }
        // Presence established by the get() above. simlint: allow(no-unwrap-in-lib)
        let lm = self.active_lms.remove(&node).expect("checked above");
        self.trace_ev(ctx.now(), TraceKind::LmDone(node));
        if let Some(idx) = lm.fail_idx {
            // The process left the vulnerable node: the failure no longer
            // hits the job.
            if let Some(ev) = self.failure_events[idx].take() {
                ctx.cancel(ev);
            }
            self.pending.remove(&idx);
            self.ledger.failures_total += 1;
            self.ledger.failures_predicted += 1;
            self.ledger.mitigated_by_lm += 1;
            // The vacated node's failure still informs the rate estimator.
            self.estimator.record(ctx.now().as_hours());
        }
        self.rate_changed(ctx);
    }

    /// Aborts every in-flight migration and folds the nodes into the
    /// round (Fig. 5: "migration aborted / p-ckpt starts").
    fn abort_lms_into_round(&mut self, ctx: &mut Ctx<'_, Ev>) {
        if self.active_lms.is_empty() {
            return;
        }
        // Drain empties the map in node order, so Vulnerable entries join
        // the round deterministically; the scratch buffer keeps the sweep
        // allocation-free.
        let mut lms = std::mem::take(&mut self.lm_scratch);
        lms.clear();
        lms.extend(self.active_lms.drain());
        for (node, _) in &lms {
            self.trace_ev(ctx.now(), TraceKind::LmAbort(*node));
        }
        // Only called while a round is active. simlint: allow(no-unwrap-in-lib)
        let round = self.round.as_mut().expect("abort into an active round");
        for &(node, lm) in &lms {
            self.ledger.lm_aborted += 1;
            round.enqueue(Vulnerable {
                node,
                deadline: lm.deadline,
                fail_idx: lm.fail_idx,
            });
        }
        lms.clear();
        self.lm_scratch = lms;
        self.rate_changed(ctx);
    }

    // ------------------------------------------------------------------
    // Safeguard checkpoints (M1).
    // ------------------------------------------------------------------

    fn request_safeguard(&mut self, ctx: &mut Ctx<'_, Ev>, fail_idx: Option<usize>, rearmed: bool) {
        match self.state {
            AppState::Safeguard => {} // in-flight commit will cover it
            AppState::Computing | AppState::BbCkpt => {
                self.leave_state(ctx.now());
                self.safeguard_level = self.work_done;
                self.enter_state(ctx, AppState::Safeguard);
                self.ledger.safeguard_ckpts += 1;
                self.trace_ev(ctx.now(), TraceKind::SafeguardStart);
                if fail_idx.is_none() && !rearmed {
                    self.ledger.false_positive_actions += 1;
                }
                if self.fluid.is_some() {
                    // Note: the safeguard (an uncoordinated protocol) does
                    // NOT suspend the drain — it contends with it. The
                    // contrast with p-ckpt's coordination is deliberate.
                    let bytes = self.p.app.nodes as f64 * self.p.per_node_bytes();
                    let weight = self.p.app.nodes as f64;
                    self.fluid_start(ctx, crate::iosim::PfsOp::Safeguard, bytes, weight);
                } else {
                    let dur = self.t_pfs_all_write * self.sync_pfs_slowdown() + self.t_barrier;
                    ctx.schedule_in(SimDuration::from_secs(dur), Ev::SafeguardDone(self.epoch));
                }
            }
            // While recovering (or in a round, which M1 never has) the
            // prediction stays pending and is re-armed afterwards.
            AppState::Round | AppState::Recovering | AppState::Done => {}
        }
    }

    fn on_safeguard_done(&mut self, ctx: &mut Ctx<'_, Ev>) {
        debug_assert_eq!(self.state, AppState::Safeguard);
        self.trace_ev(ctx.now(), TraceKind::SafeguardDone);
        self.best_pfs_all = self.best_pfs_all.max(self.safeguard_level);
        // The just-committed snapshot covers every prediction that is
        // still pending — their nodes' state is safely on the PFS.
        for pp in self.pending.values_mut() {
            if pp.covered.is_none() {
                pp.covered = Some(Mechanism::Safeguard);
            }
        }
        self.leave_state(ctx.now());
        self.resume_computing(ctx);
    }

    // ------------------------------------------------------------------
    // p-ckpt rounds (P1/P2).
    // ------------------------------------------------------------------

    fn request_pckpt(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        node: u32,
        deadline: SimTime,
        fail_idx: Option<usize>,
        rearmed: bool,
    ) {
        // Ablation: without coordination, a "p-ckpt" degenerates into a
        // safeguard checkpoint — every node contends for the PFS at once
        // and the vulnerable node only gets its 1/n share.
        if self.p.coordination == crate::config::CoordinationPolicy::Uncoordinated {
            self.request_safeguard(ctx, fail_idx, rearmed);
            return;
        }
        // Ablation: FIFO queueing ignores urgency — the priority key is
        // the arrival instant instead of the predicted failure time.
        let queue_key = match self.p.coordination {
            crate::config::CoordinationPolicy::FifoQueue => ctx.now(),
            _ => deadline,
        };
        let entry = Vulnerable {
            node,
            deadline: queue_key,
            fail_idx,
        };
        if let Some(round) = self.round.as_mut() {
            round.enqueue(entry);
            // If phase 1 had already drained but phase 2 hasn't started
            // (cannot happen — begin_phase2 is immediate), nothing to do.
            return;
        }
        match self.state {
            AppState::Computing | AppState::BbCkpt => {
                self.leave_state(ctx.now());
                let mut round = match self.spare_round.take() {
                    Some(mut r) => {
                        r.reset(self.work_done, ctx.now());
                        r
                    }
                    None => PckptRound::new(self.work_done, ctx.now()),
                };
                round.enqueue(entry);
                self.round = Some(round);
                self.rec.emit(
                    ctx.now().as_nanos(),
                    obskind::STATE,
                    state_code(AppState::Round),
                    0,
                );
                self.state = AppState::Round;
                self.state_entered = ctx.now();
                self.ledger.pckpt_rounds += 1;
                self.trace_ev(ctx.now(), TraceKind::RoundStart);
                if fail_idx.is_none() && !rearmed {
                    self.ledger.false_positive_actions += 1;
                }
                // Fig. 5: an in-progress migration is aborted when p-ckpt
                // begins; the node joins the priority queue.
                self.abort_lms_into_round(ctx);
                // Coordination extends to the job's own I/O agents: an
                // in-flight drain is suspended so the vulnerable node's
                // phase-1 commit is genuinely contention-free (fluid mode;
                // the analytic mode has no cross-operation contention to
                // begin with).
                if let Some(fluid) = self.fluid.as_mut() {
                    fluid.suspend_drain(ctx.now());
                    self.fluid_reschedule(ctx);
                }
                self.advance_round(ctx);
            }
            AppState::Safeguard | AppState::Recovering | AppState::Done => {
                // Stays pending; re-armed when computing resumes.
            }
            AppState::Round => unreachable!("handled by the round branch"),
        }
    }

    /// Starts the next phase-1 writer, or phase 2 once the queue drains.
    fn advance_round(&mut self, ctx: &mut Ctx<'_, Ev>) {
        // Round state implies an active round. simlint: allow(no-unwrap-in-lib)
        let round = self.round.as_mut().expect("advance without a round");
        if round.phase() == Phase::Phase2 {
            return;
        }
        if round.next_writer().is_some() {
            self.phase1_started = ctx.now();
            if self.fluid.is_some() {
                let bytes = self.p.per_node_bytes();
                self.fluid_start(ctx, crate::iosim::PfsOp::Phase1, bytes, 1.0);
            } else {
                let dur = self.t_pfs_single * self.sync_pfs_slowdown() + self.t_barrier;
                ctx.schedule_in(
                    SimDuration::from_secs(dur),
                    Ev::Phase1WriterDone(self.epoch),
                );
            }
        } else {
            round.begin_phase2();
            let healthy = self.p.app.nodes - round.committed_count() as u64;
            if self.fluid.is_some() {
                let bytes = healthy as f64 * self.p.per_node_bytes();
                self.fluid_start(
                    ctx,
                    crate::iosim::PfsOp::Phase2,
                    bytes,
                    (healthy as f64).max(1.0),
                );
            } else {
                let dur = if healthy == 0 {
                    self.t_barrier
                } else {
                    self.p.io.pfs.write_secs(healthy, self.p.per_node_bytes())
                        * self.sync_pfs_slowdown()
                        + self.t_barrier
                };
                ctx.schedule_in(SimDuration::from_secs(dur), Ev::Phase2Done(self.epoch));
            }
        }
    }

    fn on_phase1_writer_done(&mut self, ctx: &mut Ctx<'_, Ev>) {
        debug_assert_eq!(self.state, AppState::Round);
        // Round state implies an active round. simlint: allow(no-unwrap-in-lib)
        let round = self.round.as_mut().expect("writer done without a round");
        let committed = round.writer_committed();
        self.trace_ev(ctx.now(), TraceKind::Phase1Commit(committed.node));
        // The vulnerable node's state is on the PFS: its failure is
        // mitigated from this moment (the healthy rest will complete).
        if let Some(idx) = committed.fail_idx {
            if let Some(pp) = self.pending.get_mut(&idx) {
                if pp.covered.is_none() {
                    pp.covered = Some(Mechanism::Pckpt);
                }
            }
        }
        self.advance_round(ctx);
    }

    fn on_phase2_done(&mut self, ctx: &mut Ctx<'_, Ev>) {
        debug_assert_eq!(self.state, AppState::Round);
        // Round state implies an active round. simlint: allow(no-unwrap-in-lib)
        let round = self.round.take().expect("phase 2 without a round");
        self.best_pfs_all = self.best_pfs_all.max(round.level_secs());
        // The full-app checkpoint is durable now: phase-1 commits and
        // phase-2 joiners alike are covered against their future failures.
        for idx in round.covered_fail_idxs() {
            if let Some(pp) = self.pending.get_mut(&idx) {
                if pp.covered.is_none() {
                    pp.covered = Some(Mechanism::Pckpt);
                }
            }
        }
        self.trace_ev(ctx.now(), TraceKind::RoundComplete);
        self.spare_round = Some(round);
        self.leave_state(ctx.now());
        // The round is over: a suspended drain resumes.
        if let Some(fluid) = self.fluid.as_mut() {
            fluid.resume_drain(ctx.now(), self.drain_weight);
            self.fluid_reschedule(ctx);
        }
        self.resume_computing(ctx);
    }

    /// Recovery after a failure that struck mid-round on a phase-1
    /// committed node: healthy nodes hold the checkpointed state in
    /// memory; only the replacement node reads from the PFS.
    fn begin_replacement_only_recovery(&mut self, ctx: &mut Ctx<'_, Ev>) {
        self.trace_ev(ctx.now(), TraceKind::RecoveryStart { lost_secs: 0.0 });
        self.recovery_level = self.work_done;
        self.enter_state(ctx, AppState::Recovering);
        if self.fluid.is_some() {
            self.recovery_started = ctx.now();
            self.recovery_floor =
                ctx.now() + SimDuration::from_secs(self.p.replacement_delay_secs);
            let bytes = self.p.per_node_bytes();
            self.fluid_start(ctx, crate::iosim::PfsOp::ReplacementRead, bytes, 1.0);
        } else {
            self.recovery_dur =
                self.p.replacement_delay_secs + self.t_pfs_single * self.sync_pfs_slowdown();
            ctx.schedule_in(
                SimDuration::from_secs(self.recovery_dur),
                Ev::RecoveryDone(self.epoch),
            );
        }
    }

    /// Abandons the active round, parking it for reuse. Queued entries
    /// are simply dropped with the round state — predicted failures stay
    /// in `pending` and are re-armed when computing resumes.
    fn abort_round(&mut self) {
        // Only called while a round is active. simlint: allow(no-unwrap-in-lib)
        let round = self.round.take().expect("abort without a round");
        self.spare_round = Some(round);
    }

    // ------------------------------------------------------------------
    // Periodic checkpointing.
    // ------------------------------------------------------------------

    fn on_ckpt_due(&mut self, ctx: &mut Ctx<'_, Ev>) {
        debug_assert_eq!(self.state, AppState::Computing);
        self.leave_state(ctx.now());
        self.inflight_bb_level = self.work_done;
        self.enter_state(ctx, AppState::BbCkpt);
        ctx.schedule_in(
            SimDuration::from_secs(self.t_bb_write),
            Ev::BbWriteDone(self.epoch),
        );
    }

    fn on_bb_write_done(&mut self, ctx: &mut Ctx<'_, Ev>) {
        debug_assert_eq!(self.state, AppState::BbCkpt);
        self.ledger.periodic_ckpts += 1;
        self.trace_ev(ctx.now(), TraceKind::BbCkpt);
        // Kick off (or supersede) the asynchronous drain.
        self.drain_gen += 1;
        self.drain_level = self.inflight_bb_level;
        if self.fluid.is_some() {
            // Any previous drain (active or suspended) is superseded by
            // the fresher checkpoint.
            let now = ctx.now();
            // is_some() checked by the enclosing if. simlint: allow(no-unwrap-in-lib)
            self.fluid.as_mut().expect("checked").void_drain(now);
            let bytes = self.p.app.nodes as f64 * self.p.per_node_bytes();
            let weight = self.drain_weight;
            self.fluid_start(ctx, crate::iosim::PfsOp::Drain, bytes, weight);
        } else {
            ctx.schedule_in(
                SimDuration::from_secs(self.t_drain),
                Ev::DrainDone(self.drain_gen),
            );
        }
        // Refresh the OCI with the windowed failure-rate estimate.
        if self.p.dynamic_oci {
            let rate = self.estimator.rate(ctx.now().as_hours());
            self.oci_secs = Self::compute_oci(&self.p, self.t_bb_write, rate, self.sigma);
        }
        self.leave_state(ctx.now());
        self.resume_computing(ctx);
    }

    fn on_drain_done(&mut self, now: SimTime, gen: u32) {
        if gen != self.drain_gen {
            return; // superseded or cancelled drain
        }
        self.trace_ev(now, TraceKind::DrainDone);
        self.best_bb_pfs = self.best_bb_pfs.max(self.drain_level);
    }

    // ------------------------------------------------------------------
    // Failures and recovery.
    // ------------------------------------------------------------------

    fn on_failure(&mut self, ctx: &mut Ctx<'_, Ev>, idx: usize) {
        if self.state == AppState::Done {
            return;
        }
        self.failure_events[idx] = None;
        let f = self.trace.failures[idx];
        self.ledger.failures_total += 1;
        if f.predicted {
            self.ledger.failures_predicted += 1;
        }
        self.estimator.record(ctx.now().as_hours());
        // Fig. 1(B): a BB→PFS drain interrupted by a failure is void — the
        // failed node's staged data never reaches the PFS, so that
        // checkpoint can never serve a replacement node.
        self.drain_gen += 1;
        if let Some(fluid) = self.fluid.as_mut() {
            let now = ctx.now();
            fluid.void_drain(now);
            // Any in-flight synchronous operation dies with the failure;
            // the state-specific arms below decide what that *means*, the
            // transfers themselves are simply gone.
            fluid.cancel(now, crate::iosim::PfsOp::Safeguard);
            fluid.cancel(now, crate::iosim::PfsOp::Phase1);
            fluid.cancel(now, crate::iosim::PfsOp::Phase2);
            fluid.cancel(now, crate::iosim::PfsOp::RecoveryRead);
            fluid.cancel(now, crate::iosim::PfsOp::ReplacementRead);
            self.fluid_reschedule(ctx);
        }
        let pend = self.pending.remove(&idx);
        let covered = pend.and_then(|pp| pp.covered);
        // Under lead-time estimation error a migration can still be in
        // flight when the failure strikes (the estimate was too long):
        // the migration loses and the later LmDone is stale.
        if self.active_lms.remove(&f.node).is_some() {
            self.rate_changed(ctx);
        }

        match self.state {
            AppState::Round => {
                let mut commits = std::mem::take(&mut self.commit_scratch);
                commits.clear();
                // Round state implies an active round. simlint: allow(no-unwrap-in-lib)
                let round = self.round.as_ref().expect("Round state without round");
                let committed_here = round.is_committed(f.node);
                // Whatever happens, this round will not complete; phase-1
                // commits without phase 2 are not a durable full-app
                // checkpoint, so retract coverage they granted (the
                // failing node's own coverage is consumed right here).
                commits.extend(round.committed_fail_idxs().filter(|&i| i != idx));
                for &i in &commits {
                    if let Some(pp) = self.pending.get_mut(&i) {
                        if pp.covered == Some(Mechanism::Pckpt) {
                            pp.covered = None;
                        }
                    }
                }
                commits.clear();
                self.commit_scratch = commits;
                // Queued entries stay in `pending`; re-armed later.
                self.abort_round();
                self.leave_state(ctx.now());
                if committed_here {
                    self.trace_ev(
                        ctx.now(),
                        TraceKind::Failure {
                            node: f.node,
                            mitigated: true,
                        },
                    );
                    // The p-ckpt race was won: the vulnerable node's state
                    // is on the PFS and every healthy node is still
                    // *blocked at the checkpointed state* — only the
                    // replacement restores from the PFS, nothing is
                    // recomputed. This cheap path is exactly why p-ckpt
                    // beats safeguard checkpointing for large applications.
                    self.ledger.mitigated_by_pckpt += 1;
                    debug_assert!((self.work_done - self.recovery_level).abs() >= 0.0);
                    self.begin_replacement_only_recovery(ctx);
                } else {
                    self.trace_ev(
                        ctx.now(),
                        TraceKind::Failure {
                            node: f.node,
                            mitigated: covered.is_some(),
                        },
                    );
                    if let Some(mech) = covered {
                        // Covered by an earlier completed proactive ckpt.
                        self.count_mitigation(mech);
                    }
                    self.best_point_recovery(ctx);
                }
            }
            // An in-flight safeguard commit or BB write is void; a
            // computing segment was already closed by leave_state. Either
            // way the run restores the freshest durable checkpoint; a
            // prior proactive checkpoint (covered) makes the loss small
            // and counts as a mitigation.
            AppState::Safeguard | AppState::BbCkpt | AppState::Computing => {
                self.trace_ev(
                    ctx.now(),
                    TraceKind::Failure {
                        node: f.node,
                        mitigated: covered.is_some(),
                    },
                );
                self.leave_state(ctx.now());
                if let Some(mech) = covered {
                    self.count_mitigation(mech);
                }
                self.best_point_recovery(ctx);
            }
            AppState::Recovering => {
                // Recovery restarts from scratch; the rollback target is
                // unchanged (work_done is already at the recovery level).
                self.trace_ev(
                    ctx.now(),
                    TraceKind::Failure {
                        node: f.node,
                        mitigated: covered.is_some(),
                    },
                );
                if let Some(mech) = covered {
                    self.count_mitigation(mech);
                }
                self.leave_state(ctx.now());
                if self.fluid.is_some() {
                    // Restart along the same path the original recovery
                    // took.
                    let all_pfs = self.recovery_all_pfs;
                    let level = self.recovery_level;
                    self.begin_recovery(ctx, level, all_pfs);
                } else {
                    self.enter_state(ctx, AppState::Recovering);
                    ctx.schedule_in(
                        SimDuration::from_secs(self.recovery_dur),
                        Ev::RecoveryDone(self.epoch),
                    );
                }
            }
            AppState::Done => unreachable!("early-returned above"),
        }
    }

    fn count_mitigation(&mut self, mech: Mechanism) {
        match mech {
            Mechanism::Pckpt => self.ledger.mitigated_by_pckpt += 1,
            Mechanism::Safeguard => self.ledger.mitigated_by_safeguard += 1,
        }
    }

    /// Restores from the freshest recovery point available, whatever
    /// mechanism wrote it; prefers the BB path on ties (healthy nodes
    /// read locally, only the replacement hits the PFS).
    fn best_point_recovery(&mut self, ctx: &mut Ctx<'_, Ev>) {
        if self.best_bb_pfs >= self.best_pfs_all {
            self.begin_recovery(ctx, self.best_bb_pfs, false);
        } else {
            self.begin_recovery(ctx, self.best_pfs_all, true);
        }
    }

    fn begin_recovery(&mut self, ctx: &mut Ctx<'_, Ev>, level: f64, all_from_pfs: bool) {
        debug_assert!(
            level <= self.work_done + 1e-6,
            "recovery point {level} is ahead of the computation {}",
            self.work_done
        );
        let loss = (self.work_done - level).max(0.0);
        self.trace_ev(ctx.now(), TraceKind::RecoveryStart { lost_secs: loss });
        self.ledger.recomp_secs += loss;
        self.work_done = level;
        self.recovery_level = level;
        self.recovery_all_pfs = all_from_pfs;
        self.enter_state(ctx, AppState::Recovering);
        if self.fluid.is_some() {
            self.recovery_started = ctx.now();
            let per_node = self.p.per_node_bytes();
            if all_from_pfs {
                self.recovery_floor =
                    ctx.now() + SimDuration::from_secs(self.p.replacement_delay_secs);
                let n = self.p.app.nodes;
                self.fluid_start(
                    ctx,
                    crate::iosim::PfsOp::RecoveryRead,
                    n as f64 * per_node,
                    n as f64,
                );
            } else {
                // BB path: healthy nodes read locally (a fixed floor);
                // only the replacement's read goes over the PFS.
                self.recovery_floor = ctx.now()
                    + SimDuration::from_secs(self.p.replacement_delay_secs + self.t_bb_read);
                self.fluid_start(ctx, crate::iosim::PfsOp::ReplacementRead, per_node, 1.0);
            }
        } else {
            let read = if all_from_pfs {
                self.t_pfs_all_read * self.sync_pfs_slowdown()
            } else {
                // Healthy nodes restore from their BBs in parallel while
                // the replacement pulls its share from the PFS.
                self.t_bb_read
                    .max(self.t_pfs_single * self.sync_pfs_slowdown())
            };
            self.recovery_dur = self.p.replacement_delay_secs + read;
            ctx.schedule_in(
                SimDuration::from_secs(self.recovery_dur),
                Ev::RecoveryDone(self.epoch),
            );
        }
    }

    fn on_recovery_done(&mut self, ctx: &mut Ctx<'_, Ev>) {
        debug_assert_eq!(self.state, AppState::Recovering);
        self.trace_ev(ctx.now(), TraceKind::RecoveryDone);
        self.leave_state(ctx.now());
        self.resume_computing(ctx);
    }

    fn on_work_complete(&mut self, ctx: &mut Ctx<'_, Ev>) {
        debug_assert_eq!(self.state, AppState::Computing);
        self.close_segment(ctx.now());
        self.epoch += 1;
        self.rec.emit(
            ctx.now().as_nanos(),
            obskind::STATE,
            state_code(AppState::Done),
            0,
        );
        self.state = AppState::Done;
        self.trace_ev(ctx.now(), TraceKind::Complete);
        self.finished_at = Some(ctx.now());
        ctx.stop();
    }
}

impl Model for CrSim {
    type Event = Ev;

    fn init(&mut self, ctx: &mut Ctx<'_, Ev>) {
        // Schedule the fate of the run.
        for (idx, f) in self.trace.failures.iter().enumerate() {
            let t_fail = SimTime::from_hours(f.time_hours);
            let ev = ctx.schedule_at(t_fail, Ev::Failure(idx));
            self.failure_events[idx] = Some(ev);
            if f.predicted && self.p.model.uses_prediction() {
                let t_pred = SimTime::from_hours(f.prediction_time_hours());
                ctx.schedule_at(t_pred, Ev::Prediction(Some(idx), 0));
            }
        }
        if self.p.model.uses_prediction() {
            for (fp_idx, fp) in self.trace.false_positives.iter().enumerate() {
                ctx.schedule_at(SimTime::from_hours(fp.at_hours), Ev::Prediction(None, fp_idx));
            }
        }
        self.enter_state(ctx, AppState::Computing);
    }

    fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, event: Ev) {
        match event {
            Ev::CkptDue(e) if e == self.epoch => self.on_ckpt_due(ctx),
            Ev::BbWriteDone(e) if e == self.epoch => self.on_bb_write_done(ctx),
            Ev::WorkComplete(e) if e == self.epoch => self.on_work_complete(ctx),
            Ev::SafeguardDone(e) if e == self.epoch => self.on_safeguard_done(ctx),
            Ev::Phase1WriterDone(e) if e == self.epoch => self.on_phase1_writer_done(ctx),
            Ev::Phase2Done(e) if e == self.epoch => self.on_phase2_done(ctx),
            Ev::RecoveryDone(e) if e == self.epoch => self.on_recovery_done(ctx),
            Ev::DrainDone(gen) => {
                let now = ctx.now();
                self.on_drain_done(now, gen);
            }
            Ev::PfsTick(epoch) => self.on_pfs_tick(ctx, epoch),
            Ev::Prediction(fail_idx, fp_idx) => self.on_prediction(ctx, fail_idx, fp_idx),
            Ev::Failure(idx) => self.on_failure(ctx, idx),
            Ev::LmDone(node, seq) => self.on_lm_done(ctx, node, seq),
            // Epoch-guarded events from a superseded state: drop.
            Ev::CkptDue(_)
            | Ev::BbWriteDone(_)
            | Ev::WorkComplete(_)
            | Ev::SafeguardDone(_)
            | Ev::Phase1WriterDone(_)
            | Ev::Phase2Done(_)
            | Ev::RecoveryDone(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pckpt_failure::{FailureEvent, Prediction};
    use pckpt_workloads::Application;

    fn leads() -> LeadTimeModel {
        LeadTimeModel::desh_default()
    }

    fn params(model: ModelKind, app: &str) -> SimParams {
        SimParams::paper_defaults(model, Application::by_name(app).unwrap())
    }

    fn failure(time_hours: f64, node: u32, lead_secs: f64, predicted: bool) -> FailureEvent {
        FailureEvent {
            time_hours,
            node,
            sequence_id: 1,
            lead_secs,
            est_lead_secs: lead_secs,
            predicted,
        }
    }

    fn run(p: SimParams, trace: FailureTrace) -> RunResult {
        CrSim::new(p, trace, &leads()).run()
    }

    #[test]
    fn failure_free_run_has_only_checkpoint_overhead() {
        let p = params(ModelKind::B, "POP");
        let r = run(p.clone(), FailureTrace::default());
        assert_eq!(r.ledger.failures_total, 0);
        assert_eq!(r.ledger.recomp_secs, 0.0);
        assert_eq!(r.ledger.recovery_secs, 0.0);
        assert!(r.ledger.ckpt_secs > 0.0, "periodic checkpoints must run");
        assert!(r.ledger.periodic_ckpts > 0);
        assert!(r.accounting_residual_secs().abs() < 1.0);
        // Wall = ideal + ckpt.
        assert!(
            (r.wall_secs - r.ideal_secs - r.ledger.ckpt_secs).abs() < 1.0,
            "wall {} vs ideal {} + ckpt {}",
            r.wall_secs,
            r.ideal_secs,
            r.ledger.ckpt_secs
        );
    }

    #[test]
    fn checkpoint_count_matches_oci() {
        let p = params(ModelKind::B, "POP");
        let t_bb = p.bb_write_secs();
        let rate = p.distribution.job_rate(p.app.nodes);
        let oci = crate::oci::young_oci_secs(t_bb, rate);
        let expected = (p.app.compute_hours * 3600.0 / oci).floor();
        let r = run(p, FailureTrace::default());
        let got = r.ledger.periodic_ckpts as f64;
        assert!(
            (got - expected).abs() <= 1.0,
            "expected ≈{expected} checkpoints, got {got}"
        );
    }

    #[test]
    fn unpredicted_failure_causes_recomputation_and_recovery() {
        let p = params(ModelKind::B, "POP");
        let trace = FailureTrace {
            failures: vec![failure(100.0, 3, 60.0, false)],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.failures_total, 1);
        assert_eq!(r.ledger.mitigated(), 0);
        assert!(r.ledger.recomp_secs > 0.0, "lost work must be recomputed");
        assert!(r.ledger.recovery_secs > 0.0);
        assert!(r.ledger.ft_ratio() == 0.0);
        assert!(r.accounting_residual_secs().abs() < 1.0);
    }

    #[test]
    fn failure_before_first_checkpoint_loses_everything_since_start() {
        let mut p = params(ModelKind::B, "POP");
        p.replacement_delay_secs = 10.0;
        // OCI for POP is ~. Failure very early, before any checkpoint.
        let trace = FailureTrace {
            failures: vec![failure(0.05, 0, 10.0, false)],
            false_positives: vec![],
        };
        let r = run(p, trace);
        // Lost ≈ 180 s of work.
        assert!(
            (r.ledger.recomp_secs - 180.0).abs() < 2.0,
            "recomp = {}",
            r.ledger.recomp_secs
        );
    }

    #[test]
    fn m1_safeguard_mitigates_predicted_failure_of_small_app() {
        let p = params(ModelKind::M1, "POP");
        // POP's full-PFS commit is ≈1 s; a 60 s lead is ample.
        let trace = FailureTrace {
            failures: vec![failure(100.0, 3, 60.0, true)],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.mitigated_by_safeguard, 1);
        assert_eq!(r.ledger.ft_ratio(), 1.0);
        assert!(r.ledger.safeguard_ckpts >= 1);
        // Recomputation is only the sliver between commit and failure.
        assert!(
            r.ledger.recomp_secs < 65.0,
            "recomp = {}",
            r.ledger.recomp_secs
        );
    }

    #[test]
    fn m1_safeguard_fails_for_large_app_short_lead() {
        let p = params(ModelKind::M1, "CHIMERA");
        // CHIMERA's full commit takes hundreds of seconds; 60 s is futile.
        let trace = FailureTrace {
            failures: vec![failure(100.0, 3, 60.0, true)],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.mitigated(), 0, "safeguard must not finish in time");
        assert!(r.ledger.recomp_secs > 0.0);
    }

    #[test]
    fn m2_lm_avoids_failure_with_long_lead() {
        let p = params(ModelKind::M2, "POP");
        let theta = p.theta_secs();
        let trace = FailureTrace {
            failures: vec![failure(100.0, 3, theta + 5.0, true)],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.mitigated_by_lm, 1);
        assert_eq!(r.ledger.recomp_secs, 0.0, "avoided failures lose nothing");
        assert_eq!(r.ledger.recovery_secs, 0.0);
        assert!(r.ledger.lm_slowdown_secs > 0.0, "migration slows the app");
    }

    #[test]
    fn m2_lm_not_attempted_with_short_lead() {
        let p = params(ModelKind::M2, "CHIMERA");
        let theta = p.theta_secs();
        let trace = FailureTrace {
            failures: vec![failure(100.0, 3, theta * 0.5, true)],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.lm_started, 0);
        assert_eq!(r.ledger.mitigated(), 0);
        assert!(r.ledger.recomp_secs > 0.0);
    }

    #[test]
    fn p1_pckpt_mitigates_short_lead_on_large_app() {
        let p = params(ModelKind::P1, "CHIMERA");
        // Lead of 60 s ≫ the ~22 s single-node phase-1 commit, but far
        // below the ~470 s safeguard commit: exactly p-ckpt's sweet spot.
        let trace = FailureTrace {
            failures: vec![failure(100.0, 3, 60.0, true)],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.mitigated_by_pckpt, 1, "p-ckpt must mitigate");
        assert_eq!(r.ledger.pckpt_rounds, 1);
        assert_eq!(r.ledger.ft_ratio(), 1.0);
        // The failure struck mid-round: healthy nodes are still blocked at
        // the checkpointed state, so only the replacement node reads from
        // the PFS (replacement delay + single-node restore).
        let expected = 30.0 + p_recovery_read_secs();
        assert!(
            (r.ledger.recovery_secs - expected).abs() < 5.0,
            "recovery = {} (expected ≈{expected})",
            r.ledger.recovery_secs
        );
        assert_eq!(r.ledger.recomp_secs, 0.0, "nothing is recomputed");
    }

    fn p_recovery_read_secs() -> f64 {
        let p = params(ModelKind::P1, "CHIMERA");
        p.io.pfs.single_node_write_secs(p.per_node_bytes())
    }

    #[test]
    fn p1_failure_after_round_completion_pays_full_pfs_recovery() {
        let p = params(ModelKind::P1, "CHIMERA");
        // Lead long enough that the whole round (phase 1 + phase 2,
        // several hundred seconds) completes before the failure: the app
        // resumes, then the failure strikes — all nodes restore from the
        // PFS (the P1 recovery cost of Observation 2).
        let trace = FailureTrace {
            failures: vec![failure(100.0, 3, 1200.0, true)],
            false_positives: vec![],
        };
        let r = run(p.clone(), trace);
        assert_eq!(r.ledger.mitigated_by_pckpt, 1);
        let full_read = p.io.pfs.read_secs(p.app.nodes, p.per_node_bytes());
        assert!(
            r.ledger.recovery_secs > full_read * 0.9,
            "recovery = {} (full PFS restore ≈{full_read})",
            r.ledger.recovery_secs
        );
        // Recomputation is only the compute between round end and failure.
        assert!(r.ledger.recomp_secs > 0.0 && r.ledger.recomp_secs < 1200.0);
    }

    #[test]
    fn p1_pckpt_fails_when_lead_below_phase1_time() {
        let p = params(ModelKind::P1, "CHIMERA");
        let phase1 = p.io.pfs.single_node_write_secs(p.per_node_bytes());
        let trace = FailureTrace {
            failures: vec![failure(100.0, 3, phase1 * 0.5, true)],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.mitigated(), 0);
        assert_eq!(r.ledger.pckpt_rounds, 1, "the round started but lost the race");
    }

    #[test]
    fn p2_prefers_lm_for_long_leads_and_pckpt_for_short() {
        let p = params(ModelKind::P2, "XGC");
        let theta = p.theta_secs();
        let trace = FailureTrace {
            failures: vec![
                failure(50.0, 1, theta + 10.0, true), // LM territory
                failure(120.0, 2, theta * 0.5, true), // p-ckpt territory
            ],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.mitigated_by_lm, 1);
        assert_eq!(r.ledger.mitigated_by_pckpt, 1);
        assert_eq!(r.ledger.ft_ratio(), 1.0);
    }

    #[test]
    fn p2_aborts_lm_when_shorter_lead_prediction_arrives() {
        let p = params(ModelKind::P2, "XGC");
        let theta = p.theta_secs();
        // Failure A: long lead → LM starts. Failure B on another node,
        // 2 s after A's prediction, with a short lead → p-ckpt round
        // begins and aborts A's migration; both nodes join the queue.
        let t_pred_a = 50.0;
        let lead_a = theta + 60.0;
        let fail_a = t_pred_a + lead_a / 3600.0 * 0.0 + lead_a / 3600.0; // hours
        let t_pred_b = t_pred_a + 2.0 / 3600.0;
        let lead_b = theta * 0.5;
        let fail_b = t_pred_b + lead_b / 3600.0;
        let trace = FailureTrace {
            failures: vec![
                FailureEvent {
                    time_hours: fail_a,
                    node: 1,
                    sequence_id: 1,
                    lead_secs: lead_a,
                    est_lead_secs: lead_a,
                    predicted: true,
                },
                FailureEvent {
                    time_hours: fail_b,
                    node: 2,
                    sequence_id: 1,
                    lead_secs: lead_b,
                    est_lead_secs: lead_b,
                    predicted: true,
                },
            ],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.lm_aborted, 1, "the round must abort the LM");
        // B commits in phase 1 (~8 s write inside its ~19 s lead) and its
        // failure is mitigated mid-round. The round dies with it, so A's
        // prediction re-arms after recovery — with ~40 s of lead left it
        // restarts as a fresh migration and completes in time.
        assert_eq!(r.ledger.mitigated_by_pckpt, 1);
        assert_eq!(r.ledger.mitigated_by_lm, 1);
        assert_eq!(r.ledger.lm_started, 2, "aborted once, restarted once");
        assert_eq!(r.ledger.ft_ratio(), 1.0);
    }

    #[test]
    fn false_positive_triggers_action_but_no_failure() {
        let p = params(ModelKind::P1, "POP");
        let trace = FailureTrace {
            failures: vec![],
            false_positives: vec![Prediction {
                node: 5,
                at_hours: 10.0,
                lead_secs: 30.0,
                sequence_id: 2,
                genuine: false,
            }],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.failures_total, 0);
        assert_eq!(r.ledger.false_positive_actions, 1);
        assert_eq!(r.ledger.pckpt_rounds, 1);
        assert_eq!(r.ledger.ft_ratio(), 1.0, "vacuous: no failures");
        assert!(r.ledger.recomp_secs == 0.0);
    }

    #[test]
    fn proactive_checkpoint_improves_recovery_point_for_later_failure() {
        let p = params(ModelKind::P1, "POP");
        // FP-triggered p-ckpt at t=10 h commits everyone's state to the
        // PFS; an unpredicted failure shortly after loses only the work
        // since then — bounded by the OCI anyway, but the recovery point
        // must be the p-ckpt, not an older periodic checkpoint.
        let oci_hours = 2.0; // POP's OCI is ~45 min; failure 1 min after round
        let _ = oci_hours;
        let trace = FailureTrace {
            failures: vec![failure(10.0 + 1.0 / 60.0, 3, 60.0, false)],
            false_positives: vec![Prediction {
                node: 5,
                at_hours: 10.0,
                lead_secs: 30.0,
                sequence_id: 2,
                genuine: false,
            }],
        };
        let r = run(p, trace);
        // Lost work ≤ ~60 s (round duration + 1 min), not a whole OCI.
        assert!(
            r.ledger.recomp_secs < 120.0,
            "recomp = {} (recovery point not advanced?)",
            r.ledger.recomp_secs
        );
    }

    #[test]
    fn b_model_ignores_predictions() {
        let p = params(ModelKind::B, "POP");
        let trace = FailureTrace {
            failures: vec![failure(100.0, 3, 3600.0, true)],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.mitigated(), 0);
        assert_eq!(r.ledger.lm_started, 0);
        assert_eq!(r.ledger.pckpt_rounds, 0);
        assert_eq!(r.ledger.safeguard_ckpts, 0);
    }

    #[test]
    fn two_failures_in_a_row_recover_twice() {
        let p = params(ModelKind::B, "POP");
        let trace = FailureTrace {
            failures: vec![
                failure(100.0, 3, 60.0, false),
                failure(200.0, 7, 60.0, false),
            ],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.failures_total, 2);
        assert!(r.accounting_residual_secs().abs() < 1.0);
    }

    #[test]
    fn failure_during_recovery_restarts_recovery() {
        let mut p = params(ModelKind::B, "POP");
        p.replacement_delay_secs = 3600.0; // hour-long recovery window
        let trace = FailureTrace {
            failures: vec![
                failure(100.0, 3, 60.0, false),
                // Strikes 10 min into the hour-long recovery.
                failure(100.0 + 10.0 / 60.0, 7, 60.0, false),
            ],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.failures_total, 2);
        // Recovery time ≥ 10 min (lost) + full recovery.
        assert!(
            r.ledger.recovery_secs > 3600.0 + 590.0,
            "recovery = {}",
            r.ledger.recovery_secs
        );
        assert!(r.accounting_residual_secs().abs() < 1.0);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let p = params(ModelKind::P2, "XGC");
        let trace = FailureTrace {
            failures: vec![
                failure(50.0, 1, 120.0, true),
                failure(111.0, 2, 15.0, true),
                failure(180.0, 3, 60.0, false),
            ],
            false_positives: vec![],
        };
        let r1 = run(p.clone(), trace.clone());
        let r2 = run(p, trace);
        assert_eq!(r1, r2);
    }

    #[test]
    fn p2_oci_is_longer_than_p1_oci() {
        let p1 = params(ModelKind::P1, "POP");
        let p2 = params(ModelKind::P2, "POP");
        let s1 = CrSim::new(p1, FailureTrace::default(), &leads());
        let s2 = CrSim::new(p2, FailureTrace::default(), &leads());
        assert_eq!(s1.sigma(), 0.0, "P1 does not use Eq. 2");
        assert!(s2.sigma() > 0.5, "POP's σ is large");
        assert!(
            s2.oci_secs() > s1.oci_secs() * 1.3,
            "Eq. 2 must stretch the interval: {} vs {}",
            s2.oci_secs(),
            s1.oci_secs()
        );
    }

    /// Regression: a failure during the asynchronous BB→PFS drain must
    /// void that checkpoint (Fig. 1(B)); before the fix, the drain kept
    /// running and a *later* recovery could jump the computation forward
    /// past its rollback point (negative accounting residual).
    #[test]
    fn failure_during_drain_discards_the_draining_checkpoint() {
        let p = params(ModelKind::B, "CHIMERA");
        // CHIMERA: OCI ≈ 2.1 h, BB write ≈ 135 s, drain ≈ 19 min. Put the
        // first failure right in the middle of the first drain, a second
        // one shortly after recovery.
        let oci_h = CrSim::new(p.clone(), FailureTrace::default(), &leads()).oci_secs() / 3600.0;
        let bb_h = p.bb_write_secs() / 3600.0;
        let drain_mid = oci_h + bb_h + 0.05; // ~3 min into the drain
        let trace = FailureTrace {
            failures: vec![
                failure(drain_mid, 3, 10.0, false),
                failure(drain_mid + 0.4, 7, 10.0, false),
            ],
            false_positives: vec![],
        };
        let r = run(p, trace);
        // First failure: nothing drained yet → lose everything since the
        // start (one full OCI plus the 3-minute slice). Second failure
        // 0.4 h later, still before any new checkpoint → lose that slice
        // too. (Under the old bug, the orphaned drain completed during
        // recomputation and the second recovery jumped the computation
        // *forward* to its level — caught both by this bound and by the
        // accounting residual.)
        let oci_secs = oci_h * 3600.0;
        assert!(
            r.ledger.recomp_secs > oci_secs + 1000.0,
            "recomp {}s must include the full first-interval loss",
            r.ledger.recomp_secs
        );
        assert!(
            r.ledger.recomp_secs < oci_secs + 3600.0,
            "recomp {}s larger than both losses combined",
            r.ledger.recomp_secs
        );
        assert!(r.accounting_residual_secs().abs() < 1.0);
    }

    /// Regression companion: with the failure *after* the drain completes,
    /// the checkpoint is durable and only the post-checkpoint slice is
    /// lost.
    #[test]
    fn failure_after_drain_recovers_from_that_checkpoint() {
        let p = params(ModelKind::B, "CHIMERA");
        let oci_h = CrSim::new(p.clone(), FailureTrace::default(), &leads()).oci_secs() / 3600.0;
        let after_drain = oci_h + 0.5; // drain (~19 min) has finished
        let trace = FailureTrace {
            failures: vec![failure(after_drain, 3, 10.0, false)],
            false_positives: vec![],
        };
        let r = run(p, trace);
        // Lost work ≈ the slice computed after the checkpoint (< 0.5 h of
        // compute, minus the blocked BB write time).
        assert!(
            r.ledger.recomp_secs < 0.5 * 3600.0,
            "recomp {}s must be bounded by the post-checkpoint slice",
            r.ledger.recomp_secs
        );
        assert!(r.ledger.recomp_secs > 0.0);
    }

    #[test]
    fn prediction_during_recovery_is_rearmed_afterwards() {
        let mut p = params(ModelKind::P1, "POP");
        p.replacement_delay_secs = 600.0; // 10-minute recovery window
        // Failure A (unpredicted) triggers recovery; failure B is
        // predicted during A's recovery with a deadline far beyond it —
        // the request must be re-armed once computing resumes and then
        // mitigated.
        let t_a = 50.0;
        let t_b = t_a + 0.5; // 30 min later; prediction ~28 min earlier
        let trace = FailureTrace {
            failures: vec![
                failure(t_a, 1, 5.0, false),
                failure(t_b, 2, 1500.0, true), // predicted mid-recovery
            ],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(
            r.ledger.mitigated_by_pckpt, 1,
            "the re-armed prediction must still be acted on"
        );
    }

    #[test]
    fn fifo_coordination_still_mitigates_single_predictions() {
        let mut p = params(ModelKind::P1, "CHIMERA");
        p.coordination = crate::config::CoordinationPolicy::FifoQueue;
        let trace = FailureTrace {
            failures: vec![failure(100.0, 3, 60.0, true)],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.mitigated_by_pckpt, 1);
    }

    #[test]
    fn uncoordinated_pckpt_degenerates_to_safeguard() {
        let mut p = params(ModelKind::P1, "CHIMERA");
        p.coordination = crate::config::CoordinationPolicy::Uncoordinated;
        // 60 s of lead: plenty for a prioritized phase-1 commit (~21 s),
        // hopeless for an all-nodes commit (~460 s).
        let trace = FailureTrace {
            failures: vec![failure(100.0, 3, 60.0, true)],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(
            r.ledger.mitigated(),
            0,
            "without coordination the p-ckpt advantage must vanish"
        );
        assert_eq!(r.ledger.pckpt_rounds, 0);
        assert!(r.ledger.safeguard_ckpts >= 1);
    }

    #[test]
    fn sigma_policy_changes_p2_interval_not_p1() {
        let mut aware = params(ModelKind::P2, "POP");
        aware.sigma_policy = crate::oci::SigmaPolicy::AccuracyAware;
        let mut lead_only = params(ModelKind::P2, "POP");
        lead_only.sigma_policy = crate::oci::SigmaPolicy::LeadTimeOnly;
        let s_aware = CrSim::new(aware, FailureTrace::default(), &leads());
        let s_lead = CrSim::new(lead_only, FailureTrace::default(), &leads());
        // POP's σ hits the cap lead-only (0.95) but only 0.85 · P(..) ≈
        // 0.85 accuracy-aware → lead-only stretches the interval further.
        assert!(s_lead.sigma() > s_aware.sigma());
        assert!(s_lead.oci_secs() > s_aware.oci_secs());
        let p1 = CrSim::new(
            params(ModelKind::P1, "POP"),
            FailureTrace::default(),
            &leads(),
        );
        assert_eq!(p1.sigma(), 0.0, "P1 never uses Eq. 2");
    }

    #[test]
    fn fp_triggered_lm_costs_only_slowdown() {
        let p = params(ModelKind::M2, "POP");
        let theta = p.theta_secs();
        let trace = FailureTrace {
            failures: vec![],
            false_positives: vec![Prediction {
                node: 5,
                at_hours: 10.0,
                lead_secs: theta + 30.0,
                sequence_id: 2,
                genuine: false,
            }],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.lm_started, 1);
        assert_eq!(r.ledger.false_positive_actions, 1);
        assert_eq!(r.ledger.failures_total, 0);
        assert!(r.ledger.lm_slowdown_secs > 0.0);
        assert!(
            r.ledger.lm_slowdown_secs < 1.0,
            "one θ-long migration at 1% slowdown costs well under a second"
        );
        assert_eq!(r.ledger.recovery_secs, 0.0);
    }

    #[test]
    fn second_prediction_on_migrating_node_is_deduplicated() {
        let p = params(ModelKind::M2, "POP");
        let theta = p.theta_secs();
        // Two predicted failures on the SAME node, the second's prediction
        // arriving while the first migration is still in flight. The
        // migration resolves the first failure; the second failure on the
        // (replacement) node keeps its own prediction and a fresh LM.
        let t1 = 10.0;
        let lead1 = theta + 20.0;
        let t2 = t1 + 0.5;
        let lead2 = theta + 40.0;
        let trace = FailureTrace {
            failures: vec![
                failure(t1 + lead1 / 3600.0, 7, lead1, true),
                failure(t2 + lead2 / 3600.0, 7, lead2, true),
            ],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.failures_total, 2);
        assert_eq!(r.ledger.mitigated_by_lm, 2);
        assert_eq!(r.ledger.ft_ratio(), 1.0);
    }

    #[test]
    fn prediction_during_phase2_is_covered_by_round_completion() {
        let p = params(ModelKind::P1, "CHIMERA");
        // Failure A starts a round (short lead → phase 1 runs ~21 s, then
        // phase 2 ~460 s). Failure B's prediction arrives mid-phase-2 with
        // a deadline beyond the round's end: B is covered by the very
        // checkpoint being written.
        let t_pred_a = 50.0;
        let lead_a = 2000.0; // round completes before A's failure
        let t_pred_b = t_pred_a + 100.0 / 3600.0; // 100 s later: inside phase 2
        let lead_b = 1200.0; // beyond the round's end
        let trace = FailureTrace {
            failures: vec![
                FailureEvent {
                    time_hours: t_pred_a + lead_a / 3600.0,
                    node: 1,
                    sequence_id: 1,
                    lead_secs: lead_a,
                    est_lead_secs: lead_a,
                    predicted: true,
                },
                FailureEvent {
                    time_hours: t_pred_b + lead_b / 3600.0,
                    node: 2,
                    sequence_id: 1,
                    lead_secs: lead_b,
                    est_lead_secs: lead_b,
                    predicted: true,
                },
            ],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.failures_total, 2);
        assert_eq!(r.ledger.mitigated_by_pckpt, 2, "both covered");
        // B joined the already-running round: no second round needed
        // before its failure... (its failure recovers from the round's
        // checkpoint; the post-recovery re-arm finds nothing pending).
        assert!(r.ledger.pckpt_rounds <= 2);
    }

    #[test]
    fn m1_rearms_safeguard_after_recovery() {
        let mut p = params(ModelKind::M1, "POP");
        p.replacement_delay_secs = 600.0;
        // Unpredicted failure at t_a; during its 10-minute recovery a
        // prediction arrives for a failure far out. M1 cannot safeguard
        // while recovering — the request must re-arm afterwards.
        let t_a = 50.0;
        let t_b = t_a + 0.4;
        let trace = FailureTrace {
            failures: vec![
                failure(t_a, 1, 5.0, false),
                failure(t_b, 2, 1320.0, true), // predicted mid-recovery
            ],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.mitigated_by_safeguard, 1);
        assert!(r.ledger.safeguard_ckpts >= 1);
    }

    #[test]
    fn background_traffic_slows_only_synchronous_pfs_paths() {
        use crate::config::BackgroundTraffic;
        // Deterministic congestion: exactly half the bandwidth.
        let congested = |model| {
            let mut p = params(model, "CHIMERA");
            p.background_traffic = Some(BackgroundTraffic::new(0.5, 0.0));
            p
        };
        // M1 safeguard under congestion: the commit takes 2× as long, so
        // a lead that would *just* suffice no longer does.
        let clear = params(ModelKind::M1, "CHIMERA");
        let t_sg = clear.io.pfs.write_secs(clear.app.nodes, clear.per_node_bytes());
        let trace = FailureTrace {
            failures: vec![failure(100.0, 3, t_sg * 1.5, true)],
            false_positives: vec![],
        };
        let ok = run(clear, trace.clone());
        assert_eq!(ok.ledger.mitigated_by_safeguard, 1, "1.5× lead suffices unshared");
        let slow = run(congested(ModelKind::M1), trace.clone());
        assert_eq!(
            slow.ledger.mitigated(),
            0,
            "at half bandwidth the same lead must miss"
        );
        // Periodic checkpointing (BB path) is untouched: identical ckpt
        // overhead for the base model with and without congestion on a
        // failure-free run.
        let b_clear = run(params(ModelKind::B, "CHIMERA"), FailureTrace::default());
        let b_slow = run(congested(ModelKind::B), FailureTrace::default());
        assert!(
            (b_clear.ledger.ckpt_secs - b_slow.ledger.ckpt_secs).abs() < 1e-6,
            "BB writes and the async drain must not slow down"
        );
    }

    #[test]
    fn background_traffic_sampling_is_bounded() {
        use crate::config::BackgroundTraffic;
        let bt = BackgroundTraffic::new(0.6, 0.3);
        let mut rng = pckpt_simrng::SimRng::seed_from(5);
        for _ in 0..10_000 {
            let s = bt.sample_share(&mut rng);
            assert!((0.3 - 1e-9..=0.9 + 1e-9).contains(&s), "share {s}");
        }
    }

    #[test]
    fn fluid_mode_matches_analytic_when_operations_do_not_overlap() {
        use crate::iosim::PfsMode;
        // Failure-free runs: drains never overlap anything, so the two
        // modes must agree on checkpoint overhead exactly and on wall
        // time almost exactly (the analytic mode adds the µs barrier
        // terms to proactive ops, which never trigger here).
        for app in ["CHIMERA", "POP"] {
            let a = run(params(ModelKind::B, app), FailureTrace::default());
            let mut pf = params(ModelKind::B, app);
            pf.pfs_mode = PfsMode::Fluid;
            let f = run(pf, FailureTrace::default());
            assert!(
                (a.ledger.ckpt_secs - f.ledger.ckpt_secs).abs() < 1.0,
                "{app}: ckpt {} vs {}",
                a.ledger.ckpt_secs,
                f.ledger.ckpt_secs
            );
            assert!((a.wall_secs - f.wall_secs).abs() < 2.0);
            assert!(f.accounting_residual_secs().abs() < 1.0);
        }
    }

    #[test]
    fn fluid_mode_single_mitigation_agrees_with_analytic() {
        use crate::iosim::PfsMode;
        // One predicted failure, p-ckpt mitigates mid-round: phase-1 runs
        // with the drain suspended, so the latency matches the analytic
        // single-node time and mitigation succeeds in both modes.
        let trace = FailureTrace {
            failures: vec![failure(100.0, 3, 60.0, true)],
            false_positives: vec![],
        };
        let a = run(params(ModelKind::P1, "CHIMERA"), trace.clone());
        let mut pf = params(ModelKind::P1, "CHIMERA");
        pf.pfs_mode = PfsMode::Fluid;
        let f = run(pf, trace);
        assert_eq!(a.ledger.mitigated_by_pckpt, 1);
        assert_eq!(f.ledger.mitigated_by_pckpt, 1);
        // Fluid mode overlaps replacement provisioning with the PFS read
        // (analytic serializes them): fluid recovery = max(read, delay),
        // analytic = delay + read. Equal otherwise.
        let analytic_serial = a.ledger.recovery_secs;
        let read = p_recovery_read_secs(); // CHIMERA single-node PFS read
        let delay = 30.0;
        assert!(
            (f.ledger.recovery_secs - read.max(delay)).abs() < 1.0,
            "fluid recovery {} vs overlapped {}",
            f.ledger.recovery_secs,
            read.max(delay)
        );
        assert!((analytic_serial - (delay + read)).abs() < 1.0);
        assert!(f.accounting_residual_secs().abs() < 1.0);
    }

    #[test]
    fn fluid_mode_drain_contention_slows_uncoordinated_safeguard_only() {
        use crate::iosim::PfsMode;
        // Craft a prediction that lands *during* the drain window
        // (checkpoint done, drain in flight). Under p-ckpt the drain is
        // suspended — mitigation succeeds; under safeguard (M1) the
        // commit contends with the 512-weight drain and also carries the
        // full job width, so it cannot beat the same lead.
        let p_probe = params(ModelKind::B, "CHIMERA");
        let oci_h =
            CrSim::new(p_probe.clone(), FailureTrace::default(), &leads()).oci_secs() / 3600.0;
        let bb_h = p_probe.bb_write_secs() / 3600.0;
        let in_drain = oci_h + bb_h + 0.02; // ~1 min into the ~20 min drain
        let lead = 120.0; // ample for phase-1 (~21 s), hopeless for safeguard
        let trace = FailureTrace {
            failures: vec![failure(in_drain + lead / 3600.0, 3, lead, true)],
            false_positives: vec![],
        };
        let mut p1 = params(ModelKind::P1, "CHIMERA");
        p1.pfs_mode = PfsMode::Fluid;
        let r1 = run(p1, trace.clone());
        assert_eq!(
            r1.ledger.mitigated_by_pckpt, 1,
            "p-ckpt suspends the drain and wins the race"
        );
        let mut m1 = params(ModelKind::M1, "CHIMERA");
        m1.pfs_mode = PfsMode::Fluid;
        let rm = run(m1, trace);
        assert_eq!(
            rm.ledger.mitigated(),
            0,
            "the uncoordinated safeguard contends with its own drain and loses"
        );
    }

    #[test]
    fn fluid_mode_survives_failure_bursts_with_clean_accounting() {
        use crate::iosim::PfsMode;
        // A hostile trace: failures during drains, rounds and recoveries.
        let mut pf = params(ModelKind::P2, "XGC");
        pf.pfs_mode = PfsMode::Fluid;
        let trace = FailureTrace {
            failures: vec![
                failure(10.0, 1, 60.0, true),
                failure(10.02, 2, 10.0, true),
                failure(10.05, 3, 30.0, false),
                failure(40.0, 4, 25.0, true),
                failure(40.001, 5, 500.0, false),
                failure(100.0, 6, 45.0, true),
            ],
            false_positives: vec![Prediction {
                node: 9,
                at_hours: 70.0,
                lead_secs: 40.0,
                sequence_id: 3,
                genuine: false,
            }],
        };
        let r = run(pf, trace);
        assert_eq!(r.ledger.failures_total, 6);
        assert!(r.accounting_residual_secs().abs() < 1.0);
        assert!(r.ledger.ft_ratio() > 0.0);
    }

    #[test]
    fn lead_overestimate_makes_lm_lose_the_race() {
        // The predictor reports a lead long enough for migration, but the
        // failure actually strikes mid-transfer: the migration is void
        // and the failure lands unmitigated (the stale LmDone must not
        // count a mitigation afterwards).
        let p = params(ModelKind::M2, "XGC");
        let theta = p.theta_secs();
        let actual_lead = theta * 0.5;
        let trace = FailureTrace {
            failures: vec![FailureEvent {
                time_hours: 100.0,
                node: 3,
                sequence_id: 1,
                lead_secs: actual_lead,
                est_lead_secs: theta + 30.0, // overestimate → LM chosen
                predicted: true,
            }],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.lm_started, 1, "the estimate justified an LM");
        assert_eq!(r.ledger.mitigated(), 0, "but the failure won the race");
        assert!(r.ledger.recomp_secs > 0.0);
        assert!(r.accounting_residual_secs().abs() < 1.0);
    }

    #[test]
    fn lead_underestimate_pushes_p2_toward_pckpt() {
        // The reverse: an underestimate makes P2 choose p-ckpt where LM
        // would have sufficed — conservative but still mitigated.
        let p = params(ModelKind::P2, "XGC");
        let theta = p.theta_secs();
        let trace = FailureTrace {
            failures: vec![FailureEvent {
                time_hours: 100.0,
                node: 3,
                sequence_id: 1,
                lead_secs: theta + 60.0,     // LM would have worked
                est_lead_secs: theta * 0.5,  // but the estimate says no
                predicted: true,
            }],
            false_positives: vec![],
        };
        let r = run(p, trace);
        assert_eq!(r.ledger.lm_started, 0);
        assert_eq!(r.ledger.mitigated_by_pckpt, 1);
    }

    #[test]
    fn run_traced_records_the_story() {
        use crate::tracer::TraceKind;
        let p = params(ModelKind::P2, "XGC");
        let theta = p.theta_secs();
        let trace = FailureTrace {
            failures: vec![
                failure(50.0, 1, theta + 10.0, true), // LM
                failure(120.0, 2, theta * 0.5, true), // p-ckpt
                failure(180.0, 3, 10.0, false),       // unmitigated
            ],
            false_positives: vec![],
        };
        let (result, story) = CrSim::new(p, trace, &leads()).run_traced();
        assert_eq!(result.ledger.failures_total, 3);
        assert_eq!(story.count(|k| matches!(k, TraceKind::Prediction { .. })), 2);
        assert_eq!(story.count(|k| matches!(k, TraceKind::LmStart(_))), 1);
        assert_eq!(story.count(|k| matches!(k, TraceKind::LmDone(_))), 1);
        assert_eq!(story.count(|k| matches!(k, TraceKind::RoundStart)), 1);
        assert_eq!(story.count(|k| matches!(k, TraceKind::Phase1Commit(_))), 1);
        assert_eq!(
            story.count(|k| matches!(k, TraceKind::Failure { mitigated: true, .. })),
            1,
            "the p-ckpt-mitigated failure (the LM-avoided one never fires)"
        );
        assert_eq!(
            story.count(|k| matches!(k, TraceKind::Failure { mitigated: false, .. })),
            1
        );
        assert_eq!(story.count(|k| matches!(k, TraceKind::Complete)), 1);
        // Rendering produces a narrative containing the key beats.
        let text = story.render(false);
        assert!(text.contains("live migration complete"));
        assert!(text.contains("phase 1: node 2 committed"));
        assert!(text.contains("unmitigated"));
        // The untraced run is byte-identical in results.
        let p2 = params(ModelKind::P2, "XGC");
        let trace2 = FailureTrace {
            failures: vec![
                failure(50.0, 1, theta + 10.0, true),
                failure(120.0, 2, theta * 0.5, true),
                failure(180.0, 3, 10.0, false),
            ],
            false_positives: vec![],
        };
        let plain = CrSim::new(p2, trace2, &leads()).run();
        assert_eq!(plain, result);
    }

    #[test]
    fn reset_for_run_replays_exactly_like_a_fresh_build() {
        use pckpt_desim::{run_with_queue, EventQueue};
        use pckpt_simrng::SimRng;
        let theta = params(ModelKind::P2, "XGC").theta_secs();
        // Three traces exercising LM, p-ckpt, unmitigated failure, and a
        // false positive — the states a recycled sim must fully unwind.
        let traces = [
            FailureTrace {
                failures: vec![
                    failure(50.0, 1, theta + 10.0, true),
                    failure(120.0, 2, theta * 0.5, true),
                ],
                false_positives: vec![],
            },
            FailureTrace {
                failures: vec![failure(80.0, 3, 10.0, false)],
                false_positives: vec![Prediction {
                    at_hours: 30.0,
                    node: 7,
                    lead_secs: theta + 20.0,
                    sequence_id: 1,
                    genuine: false,
                }],
            },
            FailureTrace::default(),
        ];
        for mode in [crate::iosim::PfsMode::Analytic, crate::iosim::PfsMode::Fluid] {
            let mut p = params(ModelKind::P2, "XGC");
            p.pfs_mode = mode;
            // Arena path: one sim + one queue recycled across all traces,
            // including a warmup pass so reuse is actually exercised.
            let mut sim = CrSim::new(p.clone(), FailureTrace::default(), &leads());
            let mut queue = EventQueue::new();
            let mut reused = Vec::new();
            for trace in traces.iter().chain(traces.iter()) {
                queue.reset();
                sim.reset_for_run(trace, SimRng::seed_from(0xFEED));
                run_with_queue(&mut sim, &mut queue, 10_000_000);
                reused.push(sim.result());
            }
            for (i, trace) in traces.iter().chain(traces.iter()).enumerate() {
                let fresh = CrSim::new(p.clone(), trace.clone(), &leads())
                    .with_bg_rng(SimRng::seed_from(0xFEED))
                    .run();
                assert_eq!(reused[i], fresh, "trace {i} diverged ({mode:?})");
            }
        }
    }

    #[test]
    fn horizon_guard_panics_if_application_cannot_finish() {
        // An empty event queue with work remaining means the model is
        // broken; ensure the failure mode is loud. We simulate it by
        // crafting a run whose WorkComplete would be past any failure but
        // the budget cuts it off — instead, verify normal completion sets
        // finished_at.
        let p = params(ModelKind::B, "VULCAN");
        let r = run(p, FailureTrace::default());
        assert!(r.wall_secs >= 720.0 * 3600.0);
    }
}

//! The binary result-frame codec shared by shard children and the
//! campaign service.
//!
//! PR 9's shard frames established the wire discipline this module
//! extracts: little-endian fixed-width fields, raw [`RunResult`]s (every
//! `f64` travels by bit pattern, so decode ∘ encode is the identity on
//! results), and a trailing FNV-1a digest over everything before it —
//! truncation at any prefix length and any corrupted byte are detected
//! before a single field is trusted. The shard codec
//! ([`crate::shard::encode_frame`]), the service's cell cache entries,
//! and the sweep journal all compose these primitives, so there is
//! exactly one implementation of the byte layout.

use crate::metrics::{OverheadLedger, RunResult};

/// Frame format version shared by every frame-shaped artifact (shard
/// frames, cache cells, journal records). Bump on any layout change.
pub const FRAME_VERSION: u16 = 1;

// ---------------------------------------------------------------------
// Little-endian primitives
// ---------------------------------------------------------------------

/// Appends a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` by bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Takes the next `n` bytes or reports the truncation offset.
pub fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], String> {
    let at = *pos;
    if bytes.len().saturating_sub(at) < n {
        return Err(format!("frame truncated at byte {at}"));
    }
    *pos = at + n;
    Ok(&bytes[at..at + n])
}

/// Reads a little-endian `u16`.
pub fn get_u16(bytes: &[u8], pos: &mut usize) -> Result<u16, String> {
    let mut raw = [0u8; 2];
    raw.copy_from_slice(take(bytes, pos, 2)?);
    Ok(u16::from_le_bytes(raw))
}

/// Reads a little-endian `u32`.
pub fn get_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(take(bytes, pos, 4)?);
    Ok(u32::from_le_bytes(raw))
}

/// Reads a little-endian `u64`.
pub fn get_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(take(bytes, pos, 8)?);
    Ok(u64::from_le_bytes(raw))
}

/// Reads an `f64` by bit pattern.
pub fn get_f64(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    Ok(f64::from_bits(get_u64(bytes, pos)?))
}

// ---------------------------------------------------------------------
// RunResult codec
// ---------------------------------------------------------------------

/// Serializes one raw per-run result (ledger, wall/ideal/OCI seconds,
/// observability counters) — the exact stream the deterministic fold
/// replays, so every `f64` travels by bit pattern.
pub fn encode_run_result(out: &mut Vec<u8>, r: &RunResult) {
    let l = &r.ledger;
    put_f64(out, l.ckpt_secs);
    put_f64(out, l.lm_slowdown_secs);
    put_f64(out, l.recomp_secs);
    put_f64(out, l.recovery_secs);
    for c in [
        l.failures_total,
        l.failures_predicted,
        l.mitigated_by_lm,
        l.mitigated_by_pckpt,
        l.mitigated_by_safeguard,
        l.false_positive_actions,
        l.pckpt_rounds,
        l.safeguard_ckpts,
        l.lm_started,
        l.lm_aborted,
        l.periodic_ckpts,
    ] {
        put_u64(out, c);
    }
    put_f64(out, r.wall_secs);
    put_f64(out, r.ideal_secs);
    put_f64(out, r.final_oci_secs);
    r.obs.encode_into(out);
}

/// Inverse of [`encode_run_result`].
pub fn decode_run_result(bytes: &[u8], pos: &mut usize) -> Result<RunResult, String> {
    let mut r = RunResult::default();
    decode_run_result_into(bytes, pos, &mut r)?;
    Ok(r)
}

/// [`decode_run_result`] into a caller-owned result, overwriting its
/// previous contents. A `RunResult` is ~2 KiB (four fixed histograms),
/// so a loop decoding thousands of them reuses one scratch value
/// instead of moving a fresh one out per call. On error the contents
/// are unspecified.
pub fn decode_run_result_into(
    bytes: &[u8],
    pos: &mut usize,
    out: &mut RunResult,
) -> Result<(), String> {
    out.ledger = OverheadLedger {
        ckpt_secs: get_f64(bytes, pos)?,
        lm_slowdown_secs: get_f64(bytes, pos)?,
        recomp_secs: get_f64(bytes, pos)?,
        recovery_secs: get_f64(bytes, pos)?,
        failures_total: get_u64(bytes, pos)?,
        failures_predicted: get_u64(bytes, pos)?,
        mitigated_by_lm: get_u64(bytes, pos)?,
        mitigated_by_pckpt: get_u64(bytes, pos)?,
        mitigated_by_safeguard: get_u64(bytes, pos)?,
        false_positive_actions: get_u64(bytes, pos)?,
        pckpt_rounds: get_u64(bytes, pos)?,
        safeguard_ckpts: get_u64(bytes, pos)?,
        lm_started: get_u64(bytes, pos)?,
        lm_aborted: get_u64(bytes, pos)?,
        periodic_ckpts: get_u64(bytes, pos)?,
    };
    out.wall_secs = get_f64(bytes, pos)?;
    out.ideal_secs = get_f64(bytes, pos)?;
    out.final_oci_secs = get_f64(bytes, pos)?;
    out.obs.decode_into(bytes, pos)
}

// ---------------------------------------------------------------------
// Digest seal
// ---------------------------------------------------------------------

/// Appends the trailing FNV-1a digest that closes every frame-shaped
/// artifact, returning the sealed bytes.
pub fn seal(mut bytes: Vec<u8>) -> Vec<u8> {
    let digest = crate::fingerprint::fnv1a(&bytes);
    put_u64(&mut bytes, digest);
    bytes
}

/// Verifies a sealed artifact's trailing digest and returns the body it
/// covers. Truncation at any prefix length and any corrupted byte fail
/// here, before any field is decoded.
pub fn check_seal(bytes: &[u8]) -> Result<&[u8], String> {
    if bytes.len() < 8 {
        return Err(format!("frame too short ({} bytes)", bytes.len()));
    }
    let body = &bytes[..bytes.len() - 8];
    let mut dpos = bytes.len() - 8;
    let stated = get_u64(bytes, &mut dpos)?;
    let actual = crate::fingerprint::fnv1a(body);
    if stated != actual {
        return Err(format!(
            "frame digest mismatch (stated {stated:016x}, computed {actual:016x})"
        ));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pckpt_simobs::RunObs;

    #[test]
    fn run_result_roundtrip_is_exact() {
        let r = RunResult {
            ledger: OverheadLedger {
                ckpt_secs: 1.5e-3,
                lm_slowdown_secs: -0.0,
                recomp_secs: f64::MIN_POSITIVE,
                recovery_secs: 1.0 / 3.0,
                failures_total: u64::MAX,
                failures_predicted: 7,
                ..OverheadLedger::default()
            },
            wall_secs: 7200.0,
            ideal_secs: 7000.25,
            final_oci_secs: 600.125,
            obs: RunObs::default(),
        };
        let mut buf = Vec::new();
        encode_run_result(&mut buf, &r);
        let mut pos = 0;
        let back = decode_run_result(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len(), "no trailing bytes");
        assert_eq!(back, r);
        assert_eq!(back.ledger.lm_slowdown_secs.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn seal_detects_truncation_and_corruption() {
        let sealed = seal(b"canonical payload".to_vec());
        assert_eq!(check_seal(&sealed).unwrap(), b"canonical payload");
        for cut in 0..sealed.len() {
            assert!(check_seal(&sealed[..cut]).is_err(), "prefix {cut} passed");
        }
        for at in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[at] ^= 0x40;
            assert!(check_seal(&bad).is_err(), "corrupt byte {at} passed");
        }
    }
}

//! Run tracing: the story of one simulated run.
//!
//! Aggregated metrics say *how much* overhead a model paid; a trace says
//! *what happened* — when predictions arrived, which proactive action was
//! chosen, how the race against each failure went. Enable with
//! [`crate::sim::CrSim::run_traced`], or from the command line:
//!
//! ```text
//! pckpt trace --app CHIMERA --model P2 --seed 7
//! ```

use pckpt_desim::SimTime;

/// One recorded occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// The trace alphabet.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// The application state machine moved.
    State(&'static str),
    /// A prediction was delivered (node, usable lead seconds, genuine).
    Prediction {
        /// Predicted-to-fail node.
        node: u32,
        /// Usable lead time, seconds.
        lead_secs: f64,
        /// False for false positives.
        genuine: bool,
    },
    /// A live migration started on a node.
    LmStart(u32),
    /// A live migration completed; the failure (if genuine) is avoided.
    LmDone(u32),
    /// A live migration was aborted in favour of p-ckpt.
    LmAbort(u32),
    /// A p-ckpt round opened.
    RoundStart,
    /// A vulnerable node's phase-1 commit landed.
    Phase1Commit(u32),
    /// The round's phase-2 collective commit finished (durable ckpt).
    RoundComplete,
    /// A safeguard commit started.
    SafeguardStart,
    /// The safeguard commit finished.
    SafeguardDone,
    /// A periodic checkpoint reached the burst buffers.
    BbCkpt,
    /// An asynchronous drain made a checkpoint PFS-durable.
    DrainDone,
    /// A failure struck (node, whether it was mitigated).
    Failure {
        /// Failing node.
        node: u32,
        /// True when a proactive mechanism covered it.
        mitigated: bool,
    },
    /// Recovery began (work-seconds rolled back).
    RecoveryStart {
        /// Lost work being recomputed, seconds.
        lost_secs: f64,
    },
    /// Recovery finished; computation resumes.
    RecoveryDone,
    /// The application completed its work.
    Complete,
}

/// An append-only run trace.
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    events: Vec<TraceEvent>,
}

impl RunTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an event (monotone timestamps enforced in debug builds).
    pub fn push(&mut self, at: SimTime, kind: TraceKind) {
        debug_assert!(
            self.events.last().map(|e| e.at <= at).unwrap_or(true),
            "trace must be recorded in time order"
        );
        self.events.push(TraceEvent { at, kind });
    }

    /// All events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Counts events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// Renders the trace as a one-line-per-event narrative.
    ///
    /// `verbose = false` skips the periodic checkpoint/drain heartbeat and
    /// keeps the fault-tolerance story (predictions, actions, failures).
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        for ev in &self.events {
            let line = match &ev.kind {
                TraceKind::BbCkpt | TraceKind::DrainDone | TraceKind::State(_) if !verbose => {
                    continue
                }
                TraceKind::State(s) => format!("state → {s}"),
                TraceKind::Prediction {
                    node,
                    lead_secs,
                    genuine,
                } => format!(
                    "prediction: node {node} fails in {lead_secs:.1}s{}",
                    if *genuine { "" } else { " [false alarm]" }
                ),
                TraceKind::LmStart(n) => format!("live migration started (node {n})"),
                TraceKind::LmDone(n) => format!("live migration complete — node {n} vacated"),
                TraceKind::LmAbort(n) => {
                    format!("live migration ABORTED (node {n}) — p-ckpt takes over")
                }
                TraceKind::RoundStart => "p-ckpt round: all nodes freeze".to_string(),
                TraceKind::Phase1Commit(n) => {
                    format!("  phase 1: node {n} committed to PFS (mitigation point)")
                }
                TraceKind::RoundComplete => {
                    "  phase 2 complete: checkpoint durable, computing resumes".to_string()
                }
                TraceKind::SafeguardStart => "safeguard commit: all nodes → PFS".to_string(),
                TraceKind::SafeguardDone => "safeguard commit complete".to_string(),
                TraceKind::BbCkpt => "periodic checkpoint → burst buffers".to_string(),
                TraceKind::DrainDone => "async drain complete (ckpt now PFS-durable)".to_string(),
                TraceKind::Failure { node, mitigated } => format!(
                    "FAILURE on node {node} — {}",
                    if *mitigated { "MITIGATED" } else { "unmitigated" }
                ),
                TraceKind::RecoveryStart { lost_secs } => {
                    format!("recovery begins ({lost_secs:.0}s of work lost)")
                }
                TraceKind::RecoveryDone => "recovery complete".to_string(),
                TraceKind::Complete => "application complete".to_string(),
            };
            out.push_str(&format!("[{:>10.1}h] {}\n", ev.at.as_hours(), line));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: f64) -> SimTime {
        SimTime::from_hours(h)
    }

    #[test]
    fn records_and_counts() {
        let mut tr = RunTrace::new();
        tr.push(t(0.0), TraceKind::State("Computing"));
        tr.push(t(1.0), TraceKind::BbCkpt);
        tr.push(
            t(2.0),
            TraceKind::Prediction {
                node: 3,
                lead_secs: 60.0,
                genuine: true,
            },
        );
        tr.push(t(2.01), TraceKind::RoundStart);
        tr.push(t(2.02), TraceKind::Phase1Commit(3));
        tr.push(
            t(2.03),
            TraceKind::Failure {
                node: 3,
                mitigated: true,
            },
        );
        assert_eq!(tr.len(), 6);
        assert_eq!(tr.count(|k| matches!(k, TraceKind::Phase1Commit(_))), 1);
        assert!(!tr.is_empty());
    }

    #[test]
    fn render_filters_heartbeat_unless_verbose() {
        let mut tr = RunTrace::new();
        tr.push(t(0.5), TraceKind::BbCkpt);
        tr.push(
            t(1.0),
            TraceKind::Failure {
                node: 1,
                mitigated: false,
            },
        );
        let quiet = tr.render(false);
        assert!(!quiet.contains("burst buffers"));
        assert!(quiet.contains("FAILURE on node 1 — unmitigated"));
        let loud = tr.render(true);
        assert!(loud.contains("burst buffers"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time order")]
    fn rejects_time_travel() {
        let mut tr = RunTrace::new();
        tr.push(t(2.0), TraceKind::BbCkpt);
        tr.push(t(1.0), TraceKind::BbCkpt);
    }
}

//! Process-sharding of grid sweeps with a bit-identical coordinator
//! merge.
//!
//! A sharded sweep splits a grid's `(cell × run)` space into shards,
//! executes each shard in a subprocess (`pckpt shard`, or any launcher
//! command that ends up calling [`run_shard_child`]), and folds the
//! returned result frames on the coordinator in the exact `(cell,
//! model, run)` order the single-process fold uses — so the merged
//! campaign is **bit-identical** to [`run_grid`](crate::runner::run_grid)
//! (pinned by `tests/grid_equivalence.rs` and the golden digests in
//! `tests/trace_determinism.rs`).
//!
//! ### Why the merge is exact
//!
//! Every `(lane, run)` result of the pool is deterministic in
//! `(base_seed, vr, run, unit)` alone (see
//! [`run_pool_range`](crate::runner)), so a child executing global runs
//! `[r0, r1)` over a subset of cells produces bit-identical
//! [`RunResult`]s to the same runs inside a full single-process sweep —
//! provided the subset keeps each trace group intact (trace sharing
//! never crosses groups) and the child rebuilds the exact same survivor
//! cells. The planner therefore splits along two axes only: contiguous
//! global-run ranges (antithetic pairs never straddle a boundary) and
//! whole trace groups. Frames carry raw per-`(lane, run)` results; the
//! coordinator replays the single-process push sequence over them, so
//! every aggregate and CI tracker sees the identical float stream.
//!
//! ### Failure handling
//!
//! A shard that exits non-zero, writes a truncated or corrupted frame,
//! or exceeds the timeout is re-executed deterministically (same
//! geometry, same seed ⇒ same frame) up to
//! [`ShardOptions::max_attempts`]; a persistently failing shard aborts
//! the sweep with an actionable error instead of hanging. The
//! `PCKPT_SHARD_FAIL=<shard>:<mode>[:always]` hook injects these
//! failures in tests (`kill`, `truncate`, `baddigest`, `hang`).

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

use pckpt_failure::LeadTimeModel;

use crate::fingerprint::Canon;
use crate::frames::{
    check_seal, decode_run_result, encode_run_result, get_u16, get_u32, get_u64, put_u16, put_u32,
    put_u64, seal, FRAME_VERSION,
};
use crate::metrics::{Aggregate, RunResult};
use crate::prefilter::Prefilter;
use crate::runner::{
    fixed_stratum, rel_ci, run_pool_range, splice_pruned, vr_env_spec, CampaignResult, CiTracker,
    GridCell, GridPlan, GridResult, RunnerConfig, ShardMeta, VrConfig,
};

/// Frame magic: `"PKFR"` little-endian.
const FRAME_MAGIC: u32 = 0x5246_4b50;
/// Coordinator poll interval, milliseconds (counted polls substitute for
/// wall-clock timeouts, keeping the simulator free of clock reads).
const POLL_MS: u64 = 5;

// ---------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------

/// One shard's slice of the `(cell × run)` space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAssignment {
    /// Shard index (`chunk-of-groups × run_splits + run-split`).
    pub index: usize,
    /// Ascending survivor-cell indices this shard simulates (every cell
    /// whose trace group falls in the shard's group chunk).
    pub cells: Vec<usize>,
    /// First global run (inclusive).
    pub run_start: usize,
    /// Last global run (exclusive).
    pub run_end: usize,
}

/// The deterministic shard geometry: contiguous balanced global-run
/// ranges × contiguous balanced trace-group chunks.
///
/// Both axes preserve exactness: run ranges are aligned to antithetic
/// pair width so mirrored runs stay together, and group chunks keep
/// every trace group's cells on one shard so cross-cell trace sharing
/// survives the split. The geometry is a pure function of
/// `(requested, runs, n_groups, vr)`, and children receive it verbatim
/// (`PCKPT_SHARD=<index>/<run_splits>x<group_splits>`) rather than
/// re-deriving it from a shard count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Splits along the run axis.
    pub run_splits: usize,
    /// Splits along the trace-group axis.
    pub group_splits: usize,
    run_bounds: Vec<usize>,
    group_bounds: Vec<usize>,
}

/// `total` split into `parts` contiguous chunks whose sizes differ by at
/// most one (the first `total % parts` chunks get the extra item).
fn balanced_bounds(total: usize, parts: usize) -> Vec<usize> {
    let (q, r) = (total / parts, total % parts);
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0);
    let mut at = 0;
    for i in 0..parts {
        at += q + usize::from(i < r);
        bounds.push(at);
    }
    bounds
}

impl ShardPlan {
    /// Plans at most `requested` shards over `runs` global runs and
    /// `n_groups` trace groups under `vr`. The actual shard count
    /// (`run_splits × group_splits`) never exceeds the request and both
    /// axes are clamped so every shard gets at least one run block and
    /// one trace group.
    pub fn new(requested: usize, runs: usize, n_groups: usize, vr: &VrConfig) -> Self {
        let pair_w = if vr.antithetic { 2 } else { 1 };
        let blocks = runs.div_ceil(pair_w);
        let run_splits = requested.min(blocks).max(1);
        let group_splits = (requested / run_splits).min(n_groups).max(1);
        // Clamps keep both splits within their axes.
        Self::from_geometry(run_splits, group_splits, runs, n_groups)
            .expect("clamped geometry is always valid") // simlint: allow(no-unwrap-in-lib)
            .with_runs(runs, vr)
    }

    /// Rebuilds a plan from an explicit geometry (the child side of
    /// `PCKPT_SHARD`). Errors when the geometry does not fit the grid —
    /// a mismatched recipe between coordinator and child.
    pub fn from_geometry(
        run_splits: usize,
        group_splits: usize,
        runs: usize,
        n_groups: usize,
    ) -> Result<Self, String> {
        if run_splits == 0 || group_splits == 0 {
            return Err("shard geometry must have at least one split per axis".into());
        }
        if group_splits > n_groups {
            return Err(format!(
                "shard geometry wants {group_splits} group chunks but the grid has {n_groups} trace groups"
            ));
        }
        // Run bounds are balanced over antithetic pair *blocks* so a pair
        // never straddles a shard; the pair width is recoverable from the
        // bounds themselves, so it does not travel in the geometry. The
        // coordinator and child share `vr`, hence the same pair width.
        if run_splits > runs {
            return Err(format!(
                "shard geometry wants {run_splits} run ranges but the sweep has {runs} runs"
            ));
        }
        Ok(Self {
            run_splits,
            group_splits,
            run_bounds: Vec::new(),
            group_bounds: balanced_bounds(n_groups, group_splits),
        })
    }

    /// Finalizes the run axis under `vr` (separate from
    /// [`from_geometry`](Self::from_geometry) so both sides derive pair
    /// alignment from the same `VrConfig` they already share).
    pub fn with_runs(mut self, runs: usize, vr: &VrConfig) -> Self {
        let pair_w = if vr.antithetic { 2 } else { 1 };
        let blocks = runs.div_ceil(pair_w);
        let block_bounds = balanced_bounds(blocks, self.run_splits.min(blocks).max(1));
        self.run_splits = block_bounds.len() - 1;
        self.run_bounds = block_bounds
            .iter()
            .map(|&b| (b * pair_w).min(runs))
            .collect();
        self
    }

    /// Total shards in this plan.
    pub fn shards(&self) -> usize {
        self.run_splits * self.group_splits
    }

    /// The slice shard `index` executes; `cell_groups[c]` is the trace
    /// group of survivor cell `c` (from
    /// [`GridPlan::cell_group`](crate::runner::GridPlan)).
    pub fn assignment(&self, index: usize, cell_groups: &[usize]) -> ShardAssignment {
        assert!(index < self.shards(), "shard index out of range");
        let rs = index % self.run_splits;
        let gc = index / self.run_splits;
        let (g0, g1) = (self.group_bounds[gc], self.group_bounds[gc + 1]);
        ShardAssignment {
            index,
            cells: cell_groups
                .iter()
                .enumerate()
                .filter(|&(_, &g)| g0 <= g && g < g1)
                .map(|(c, _)| c)
                .collect(),
            run_start: self.run_bounds[rs],
            run_end: self.run_bounds[rs + 1],
        }
    }

    /// Which shard owns `(group, run)` — the coordinator fold's lookup.
    pub fn owner(&self, group: usize, run: usize) -> usize {
        let mut gc = 0;
        while group >= self.group_bounds[gc + 1] {
            gc += 1;
        }
        let mut rs = 0;
        while run >= self.run_bounds[rs + 1] {
            rs += 1;
        }
        gc * self.run_splits + rs
    }
}

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

/// One shard's compact binary result frame: identity + binding digest,
/// the raw per-`(lane, run)` results, and execution accounting, closed
/// by a trailing FNV-1a digest over everything before it.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFrame {
    /// Shard index within the plan.
    pub index: u32,
    /// Total shards in the plan.
    pub shards: u32,
    /// Binding digest over the campaign identity (seed, runs, VR,
    /// prefilter, survivor cells, geometry) — a frame from a different
    /// campaign or geometry never folds.
    pub binding: u64,
    /// Ascending global survivor-cell indices this frame covers.
    pub cells: Vec<u32>,
    /// First global run (inclusive).
    pub run_start: u64,
    /// Last global run (exclusive).
    pub run_end: u64,
    /// Subset lane count (sum of the covered cells' model counts).
    pub lanes: u32,
    /// Subset-lane-major results: `results[lane * span + (run -
    /// run_start)]`.
    pub results: Vec<RunResult>,
    /// Worker threads the child pool ran on.
    pub threads: u32,
    /// Trace generations the child performed.
    pub trace_generations: u64,
    /// Trace-cache hits the child saw.
    pub trace_reuses: u64,
}

/// Serializes a frame: header, results, accounting, trailing FNV-1a
/// digest. [`decode_frame`] of the output is the identity (pinned by the
/// round-trip proptest in `tests/shard_faults.rs`).
pub fn encode_frame(frame: &ShardFrame) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, FRAME_MAGIC);
    put_u16(&mut out, FRAME_VERSION);
    put_u32(&mut out, frame.index);
    put_u32(&mut out, frame.shards);
    put_u64(&mut out, frame.binding);
    put_u32(&mut out, frame.cells.len() as u32);
    for &c in &frame.cells {
        put_u32(&mut out, c);
    }
    put_u64(&mut out, frame.run_start);
    put_u64(&mut out, frame.run_end);
    put_u32(&mut out, frame.lanes);
    for r in &frame.results {
        encode_run_result(&mut out, r);
    }
    put_u32(&mut out, frame.threads);
    put_u64(&mut out, frame.trace_generations);
    put_u64(&mut out, frame.trace_reuses);
    seal(out)
}

/// Parses and validates a frame: magic, version, structural consistency
/// (`results.len() == lanes × span`, no trailing garbage), and the
/// trailing FNV-1a digest — truncation at any prefix length and any
/// corrupted byte are detected.
pub fn decode_frame(bytes: &[u8]) -> Result<ShardFrame, String> {
    let body = check_seal(bytes)?;
    let pos = &mut 0usize;
    let magic = get_u32(body, pos)?;
    if magic != FRAME_MAGIC {
        return Err(format!("bad frame magic {magic:08x}"));
    }
    let version = get_u16(body, pos)?;
    if version != FRAME_VERSION {
        return Err(format!("unsupported frame version {version}"));
    }
    let index = get_u32(body, pos)?;
    let shards = get_u32(body, pos)?;
    let binding = get_u64(body, pos)?;
    let n_cells = get_u32(body, pos)? as usize;
    let mut cells = Vec::with_capacity(n_cells);
    for _ in 0..n_cells {
        cells.push(get_u32(body, pos)?);
    }
    let run_start = get_u64(body, pos)?;
    let run_end = get_u64(body, pos)?;
    if run_end <= run_start {
        return Err(format!("empty run range [{run_start}, {run_end})"));
    }
    let lanes = get_u32(body, pos)?;
    let span = (run_end - run_start) as usize;
    let n_results = (lanes as usize)
        .checked_mul(span)
        .ok_or("result count overflow")?;
    let mut results = Vec::with_capacity(n_results.min(1 << 20));
    for _ in 0..n_results {
        results.push(decode_run_result(body, pos)?);
    }
    let threads = get_u32(body, pos)?;
    let trace_generations = get_u64(body, pos)?;
    let trace_reuses = get_u64(body, pos)?;
    if *pos != body.len() {
        return Err(format!(
            "frame has {} trailing bytes after the accounting block",
            body.len() - *pos
        ));
    }
    Ok(ShardFrame {
        index,
        shards,
        binding,
        cells,
        run_start,
        run_end,
        lanes,
        results,
        threads,
        trace_generations,
        trace_reuses,
    })
}

// ---------------------------------------------------------------------
// Binding digest
// ---------------------------------------------------------------------

/// Digest binding a frame to one exact campaign slice: seed, runs, VR
/// selection, prefilter spec, leads digest, every survivor cell's
/// identity (label, models, full `Debug` parameter rendering — stable
/// within one binary, and coordinator and children are the same binary),
/// the shard geometry, and the shard's own assignment. Coordinator and
/// child compute it independently from their own reconstruction; a
/// mismatch means the child simulated a different campaign. Built on the
/// shared [`Canon`] normal form — the same rendering the service's cell
/// and campaign fingerprints use (`crate::fingerprint`).
fn binding_digest(
    config: &RunnerConfig,
    leads_digest: u64,
    survivors: &[GridCell],
    prefilter_spec: &str,
    plan: &ShardPlan,
    asg: &ShardAssignment,
) -> u64 {
    let mut canon = Canon::new();
    canon.push_u16(FRAME_VERSION);
    canon.push_u64(config.base_seed);
    canon.push_u64(config.runs as u64);
    canon.push_u8(u8::from(config.vr.antithetic));
    canon.push_u32(config.vr.strata);
    canon.push_u64(leads_digest);
    canon.push_str(prefilter_spec);
    canon.push_u64(survivors.len() as u64);
    for cell in survivors {
        canon.push_cell(cell);
    }
    canon.push_u64(plan.run_splits as u64);
    canon.push_u64(plan.group_splits as u64);
    canon.push_u64(asg.index as u64);
    canon.push_u64(asg.run_start as u64);
    canon.push_u64(asg.run_end as u64);
    canon.push_u64(asg.cells.len() as u64);
    for &c in &asg.cells {
        canon.push_u64(c as u64);
    }
    canon.digest()
}

// ---------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------

/// The geometry a shard child receives from its coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// This child's shard index.
    pub index: usize,
    /// Splits along the run axis.
    pub run_splits: usize,
    /// Splits along the trace-group axis.
    pub group_splits: usize,
    /// Where to write the result frame.
    pub out: PathBuf,
}

/// Reads the coordinator-assigned shard geometry
/// (`PCKPT_SHARD=<index>/<run_splits>x<group_splits>`,
/// `PCKPT_SHARD_OUT=<frame path>`) — `None` when this process is not a
/// shard child.
// simlint: config — PCKPT_SHARD / PCKPT_SHARD_OUT carry the
// coordinator-assigned execution geometry, part of the experiment
// definition like the seed; they select which slice runs, never how any
// single run computes.
pub fn shard_spec_from_env() -> Option<ShardSpec> {
    let spec = std::env::var("PCKPT_SHARD").ok()?;
    let out = std::env::var("PCKPT_SHARD_OUT").ok()?;
    let (index, geom) = spec.split_once('/')?;
    let (rs, gs) = geom.split_once('x')?;
    Some(ShardSpec {
        index: index.trim().parse().ok()?,
        run_splits: rs.trim().parse().ok()?,
        group_splits: gs.trim().parse().ok()?,
        out: PathBuf::from(out),
    })
}

/// Builds the child-side runner configuration from the environment the
/// coordinator propagates (`PCKPT_RUNS`, `PCKPT_SEED`, `PCKPT_VR`;
/// threads resolve through the usual `PCKPT_THREADS` path).
// simlint: config — these are the same sanctioned experiment-definition
// reads the bench harness performs; the coordinator sets them explicitly
// for every child, so the child's config mirrors the coordinator's.
pub fn shard_child_config() -> RunnerConfig {
    let runs = std::env::var("PCKPT_RUNS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1);
    let seed = std::env::var("PCKPT_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    RunnerConfig::new(runs, seed).with_env_vr()
}

/// Injected failure modes of the `PCKPT_SHARD_FAIL` test hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailMode {
    /// Exit before writing any frame (a child killed mid-run).
    Kill,
    /// Write a truncated frame.
    Truncate,
    /// Write a frame with a corrupted trailing digest.
    BadDigest,
    /// Never write and never exit (exercises the coordinator timeout; a
    /// counted-sleep backstop eventually exits so a coordinator-less
    /// child cannot leak forever).
    Hang,
}

/// Parses `PCKPT_SHARD_FAIL=<shard>:<mode>[:always]` and applies the
/// attempt gate: without `always` the failure fires only on the first
/// attempt (`PCKPT_SHARD_ATTEMPT` ≤ 1), so the coordinator's retry
/// succeeds and recovery is observable end to end.
// simlint: config — test-only failure-injection hook; it decides whether
// this child sabotages its own output, never what any simulation
// computes.
fn fail_mode_from_env(index: usize) -> Option<FailMode> {
    let spec = std::env::var("PCKPT_SHARD_FAIL").ok()?;
    let attempt: usize = std::env::var("PCKPT_SHARD_ATTEMPT")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1);
    let mut parts = spec.trim().split(':');
    let shard: usize = parts.next()?.trim().parse().ok()?;
    let mode = match parts.next()?.trim() {
        "kill" => FailMode::Kill,
        "truncate" => FailMode::Truncate,
        "baddigest" => FailMode::BadDigest,
        "hang" => FailMode::Hang,
        _ => return None,
    };
    let always = parts.next().is_some_and(|t| t.trim() == "always");
    if shard != index || (!always && attempt > 1) {
        return None;
    }
    Some(mode)
}

/// Executes one shard of `cells` and writes its result frame to
/// `spec.out`.
///
/// The child rebuilds the coordinator's exact view: the prefilter from
/// `PCKPT_PREFILTER` selects the same survivors, the full survivor
/// [`GridPlan`] yields the same trace groups, and the explicit geometry
/// in `spec` yields the same assignment — then the shard's cells run as
/// their own grid over the assigned global-run range, which is
/// bit-identical to the same `(lane, run)` slots of a single-process
/// sweep (see the module docs).
pub fn run_shard_child(
    cells: &[GridCell],
    leads: &LeadTimeModel,
    config: &RunnerConfig,
    spec: &ShardSpec,
) -> Result<(), String> {
    let prefilter = Prefilter::from_env();
    let survivors: Vec<GridCell> = cells
        .iter()
        .filter(|c| {
            prefilter
                .as_ref()
                .map_or(true, |pf| pf.cell_verdict(c, leads).is_none())
        })
        .cloned()
        .collect();
    if survivors.is_empty() {
        return Err("no surviving cells to shard".into());
    }
    let plan = GridPlan::new(&survivors, leads);
    let splan = ShardPlan::from_geometry(
        spec.run_splits,
        spec.group_splits,
        config.runs,
        plan.trace_groups(),
    )?
    .with_runs(config.runs, &config.vr);
    if spec.index >= splan.shards() {
        return Err(format!(
            "shard index {} out of range for {} shards",
            spec.index,
            splan.shards()
        ));
    }
    let cell_groups: Vec<usize> = (0..survivors.len()).map(|c| plan.cell_group(c)).collect();
    let asg = splan.assignment(spec.index, &cell_groups);
    let subset: Vec<GridCell> = asg.cells.iter().map(|&c| survivors[c].clone()).collect();
    let sub_plan = GridPlan::new(&subset, leads);
    let pool = run_pool_range(&sub_plan, config, asg.run_start, asg.run_end);

    let mut results = Vec::with_capacity(pool.slots.len());
    for slot in pool.slots {
        results.push(slot.ok_or("pool left a result slot empty")?);
    }
    let frame = ShardFrame {
        index: asg.index as u32,
        shards: splan.shards() as u32,
        binding: binding_digest(
            config,
            leads.digest(),
            &survivors,
            &prefilter.map(|p| p.spec()).unwrap_or_default(),
            &splan,
            &asg,
        ),
        cells: asg.cells.iter().map(|&c| c as u32).collect(),
        run_start: asg.run_start as u64,
        run_end: asg.run_end as u64,
        lanes: sub_plan.lanes() as u32,
        results,
        threads: pool.threads as u32,
        trace_generations: pool.trace_generations,
        trace_reuses: pool.trace_reuses,
    };
    let mut bytes = encode_frame(&frame);

    match fail_mode_from_env(spec.index) {
        Some(FailMode::Kill) => std::process::exit(3),
        Some(FailMode::Truncate) => {
            let keep = bytes.len() - (bytes.len() / 3).max(1);
            bytes.truncate(keep);
        }
        Some(FailMode::BadDigest) => {
            // Last byte sits inside the trailing digest. simlint: allow(no-unwrap-in-lib)
            *bytes.last_mut().expect("frame is never empty") ^= 0xFF;
        }
        Some(FailMode::Hang) => {
            for _ in 0..1200 {
                thread::sleep(Duration::from_millis(100));
            }
            std::process::exit(4);
        }
        None => {}
    }
    std::fs::write(&spec.out, &bytes)
        .map_err(|e| format!("cannot write frame to {}: {e}", spec.out.display()))
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// How the coordinator launches one shard child: a program, fixed
/// arguments, and extra environment assignments (applied before the
/// per-shard variables, which always win).
#[derive(Debug, Clone)]
pub struct ShardLauncher {
    /// The program to execute.
    pub program: PathBuf,
    /// Arguments passed verbatim to every shard child.
    pub args: Vec<String>,
    /// Extra environment assignments for every shard child.
    pub envs: Vec<(String, String)>,
}

impl ShardLauncher {
    /// Launches the current executable with `args` — the CLI and the
    /// test suites both re-enter themselves this way.
    pub fn current_exe(args: Vec<String>) -> Result<Self, String> {
        Ok(Self {
            program: std::env::current_exe()
                .map_err(|e| format!("cannot resolve current executable: {e}"))?,
            args,
            envs: Vec::new(),
        })
    }

    /// Adds one environment assignment for every child.
    pub fn with_env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }
}

/// Coordinator knobs: requested shard count, retry cap, and the child
/// timeout (counted in poll ticks, not wall-clock reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOptions {
    /// Requested shard count (the planner may produce fewer).
    pub shards: usize,
    /// Attempts per shard before the sweep aborts with an error.
    pub max_attempts: usize,
    /// Per-attempt child timeout, milliseconds.
    pub timeout_millis: u64,
}

impl ShardOptions {
    /// Defaults: 3 attempts per shard, 10-minute child timeout.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            max_attempts: 3,
            timeout_millis: 600_000,
        }
    }

    /// [`new`](Self::new) with the `PCKPT_SHARD_TIMEOUT_SECS` override
    /// applied.
    // simlint: config — the timeout shapes failure handling (an
    // execution-environment property, like PCKPT_THREADS), never any
    // result: every validated frame is deterministic in the campaign.
    pub fn from_env(shards: usize) -> Self {
        let mut opts = Self::new(shards);
        if let Some(secs) = std::env::var("PCKPT_SHARD_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&s| s > 0)
        {
            opts.timeout_millis = secs.saturating_mul(1000);
        }
        opts
    }
}

/// Scratch-file counter: distinct paths per coordinator invocation
/// without clock or randomness reads.
static SCRATCH: AtomicU64 = AtomicU64::new(0);

fn scratch_path(tag: &str, index: usize, token: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pckpt-shard-{}-{}-{}.{}",
        std::process::id(),
        token,
        index,
        tag
    ))
}

/// One shard's coordinator-side state across attempts.
struct Slot {
    index: usize,
    attempt: usize,
    polls_left: u64,
    child: Option<Child>,
    frame: Option<ShardFrame>,
    out: PathBuf,
    err: PathBuf,
}

fn stderr_tail(path: &PathBuf) -> String {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let tail: String = text
        .chars()
        .rev()
        .take(400)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if tail.is_empty() {
        "<empty>".into()
    } else {
        tail
    }
}

/// [`run_grid`](crate::runner::run_grid) across `shards` subprocesses:
/// plans the shard geometry, spawns one child per shard through
/// `launcher`, folds the returned frames in single-process order, and
/// returns a [`GridResult`] whose per-cell aggregates are bit-identical
/// to the in-process sweep. The prefilter comes from `PCKPT_PREFILTER`,
/// exactly like [`run_grid`](crate::runner::run_grid).
pub fn run_grid_sharded(
    cells: &[GridCell],
    leads: &LeadTimeModel,
    config: &RunnerConfig,
    shards: usize,
    launcher: &ShardLauncher,
) -> Result<GridResult, String> {
    run_grid_sharded_opts(
        cells,
        leads,
        config,
        &ShardOptions::from_env(shards),
        launcher,
        Prefilter::from_env().as_ref(),
    )
}

/// [`run_grid_sharded`] with explicit coordinator options and prefilter.
///
/// Falls back to the in-process engine (still reporting `shard_meta`)
/// when sharding cannot help or cannot stay exact: one shard requested,
/// a degenerate plan, no surviving cells, or adaptive run allocation
/// (whose sequential feedback needs the whole grid in one fold loop).
pub fn run_grid_sharded_opts(
    cells: &[GridCell],
    leads: &LeadTimeModel,
    config: &RunnerConfig,
    opts: &ShardOptions,
    launcher: &ShardLauncher,
    prefilter: Option<&Prefilter>,
) -> Result<GridResult, String> {
    assert!(config.runs > 0, "at least one run required");
    let in_process = |meta: ShardMeta| -> GridResult {
        let mut grid = crate::runner::run_grid_filtered(cells, leads, config, prefilter);
        grid.shard_meta = Some(meta);
        grid
    };
    let fallback = ShardMeta {
        shards: 1,
        reexecutions: 0,
        frame_bytes: 0,
    };
    if opts.shards <= 1 || config.vr.adaptive.is_some() {
        return Ok(in_process(fallback));
    }
    let verdicts: Vec<_> = match prefilter {
        Some(pf) => cells.iter().map(|c| pf.cell_verdict(c, leads)).collect(),
        None => vec![None; cells.len()],
    };
    let survivors: Vec<GridCell> = cells
        .iter()
        .zip(&verdicts)
        .filter(|(_, v)| v.is_none())
        .map(|(c, _)| c.clone())
        .collect();
    if survivors.is_empty() {
        return Ok(in_process(fallback));
    }
    let plan = GridPlan::new(&survivors, leads);
    let splan = ShardPlan::new(opts.shards, config.runs, plan.trace_groups(), &config.vr);
    if splan.shards() <= 1 {
        return Ok(in_process(fallback));
    }

    let n_shards = splan.shards();
    let cell_groups: Vec<usize> = (0..survivors.len()).map(|c| plan.cell_group(c)).collect();
    let assignments: Vec<ShardAssignment> = (0..n_shards)
        .map(|i| splan.assignment(i, &cell_groups))
        .collect();
    let prefilter_spec = prefilter.map(|p| p.spec()).unwrap_or_default();
    let bindings: Vec<u64> = assignments
        .iter()
        .map(|asg| binding_digest(config, leads.digest(), &survivors, &prefilter_spec, &splan, asg))
        .collect();

    let token = SCRATCH.fetch_add(1, Ordering::Relaxed);
    let budget = (opts.timeout_millis / POLL_MS).max(1);
    let spawn = |index: usize, attempt: usize, out: &PathBuf, err: &PathBuf| -> Result<Child, String> {
        let _ = std::fs::remove_file(out);
        let _ = std::fs::remove_file(err);
        let err_file = std::fs::File::create(err)
            .map_err(|e| format!("cannot create stderr file {}: {e}", err.display()))?;
        let mut cmd = Command::new(&launcher.program);
        cmd.args(&launcher.args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(err_file);
        for (k, v) in &launcher.envs {
            cmd.env(k, v);
        }
        cmd.env(
            "PCKPT_SHARD",
            format!("{index}/{}x{}", splan.run_splits, splan.group_splits),
        );
        cmd.env("PCKPT_SHARD_OUT", out);
        cmd.env("PCKPT_SHARD_ATTEMPT", attempt.to_string());
        cmd.env("PCKPT_SEED", config.base_seed.to_string());
        cmd.env("PCKPT_RUNS", config.runs.to_string());
        match vr_env_spec(&config.vr) {
            Some(spec) => cmd.env("PCKPT_VR", spec),
            None => cmd.env_remove("PCKPT_VR"),
        };
        match &prefilter_spec {
            s if s.is_empty() => cmd.env_remove("PCKPT_PREFILTER"),
            s => cmd.env("PCKPT_PREFILTER", s),
        };
        if config.threads > 0 {
            cmd.env("PCKPT_THREADS", config.threads.to_string());
        }
        cmd.spawn()
            .map_err(|e| format!("cannot spawn shard {index}: {e}"))
    };

    let mut slots = Vec::with_capacity(n_shards);
    let mut reexecutions = 0usize;
    let mut frame_bytes = 0u64;
    for index in 0..n_shards {
        let out = scratch_path("frame", index, token);
        let err = scratch_path("stderr", index, token);
        let child = spawn(index, 1, &out, &err)?;
        slots.push(Slot {
            index,
            attempt: 1,
            polls_left: budget,
            child: Some(child),
            frame: None,
            out,
            err,
        });
    }

    let cleanup = |slots: &mut Vec<Slot>| {
        for slot in slots.iter_mut() {
            if let Some(child) = slot.child.as_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
            let _ = std::fs::remove_file(&slot.out);
            let _ = std::fs::remove_file(&slot.err);
        }
    };

    // Validates a finished child's frame against the shard's expected
    // identity; any failure is a reason string for retry accounting.
    let validate = |slot: &Slot| -> Result<(ShardFrame, u64), String> {
        let bytes = std::fs::read(&slot.out)
            .map_err(|e| format!("no frame written ({e})"))?;
        let frame = decode_frame(&bytes)?;
        let asg = &assignments[slot.index];
        if frame.binding != bindings[slot.index] {
            return Err("binding digest mismatch (different campaign or geometry)".into());
        }
        if frame.index as usize != slot.index
            || frame.shards as usize != n_shards
            || frame.run_start as usize != asg.run_start
            || frame.run_end as usize != asg.run_end
            || frame.cells.len() != asg.cells.len()
            || frame
                .cells
                .iter()
                .zip(&asg.cells)
                .any(|(&a, &b)| a as usize != b)
        {
            return Err("frame does not match the shard assignment".into());
        }
        Ok((frame, bytes.len() as u64))
    };

    loop {
        let mut progressed = false;
        let mut pending = false;
        for s in 0..slots.len() {
            if slots[s].frame.is_some() {
                continue;
            }
            pending = true;
            let status = match slots[s].child.as_mut() {
                Some(child) => child.try_wait().map_err(|e| e.to_string()),
                None => continue,
            };
            let outcome: Result<(ShardFrame, u64), String> = match status {
                Err(e) => Err(format!("wait failed: {e}")),
                Ok(None) => continue, // still running
                Ok(Some(st)) if !st.success() => Err(format!("child exited with {st}")),
                Ok(Some(_)) => validate(&slots[s]),
            };
            progressed = true;
            slots[s].child = None;
            match outcome {
                Ok((frame, bytes)) => {
                    frame_bytes += bytes;
                    slots[s].frame = Some(frame);
                    let _ = std::fs::remove_file(&slots[s].out);
                    let _ = std::fs::remove_file(&slots[s].err);
                }
                Err(reason) => {
                    if slots[s].attempt >= opts.max_attempts {
                        let tail = stderr_tail(&slots[s].err);
                        let (index, attempt) = (slots[s].index, slots[s].attempt);
                        cleanup(&mut slots);
                        return Err(format!(
                            "shard {index} failed after {attempt} attempts: \
                             {reason}; last stderr tail: {tail}"
                        ));
                    }
                    slots[s].attempt += 1;
                    slots[s].polls_left = budget;
                    reexecutions += 1;
                    let (index, attempt) = (slots[s].index, slots[s].attempt);
                    let child = match spawn(index, attempt, &slots[s].out, &slots[s].err) {
                        Ok(c) => c,
                        Err(e) => {
                            cleanup(&mut slots);
                            return Err(e);
                        }
                    };
                    slots[s].child = Some(child);
                }
            }
        }
        if !pending {
            break;
        }
        if !progressed {
            // Nothing finished this scan: sleep one tick and charge every
            // still-running child's poll budget; an exhausted budget is
            // the timeout (killed child → the retry path above).
            thread::sleep(Duration::from_millis(POLL_MS));
            for slot in slots.iter_mut() {
                if slot.frame.is_none() && slot.child.is_some() {
                    slot.polls_left = slot.polls_left.saturating_sub(1);
                    if slot.polls_left == 0 {
                        if let Some(child) = slot.child.as_mut() {
                            let _ = child.kill();
                            // Reap so try_wait observes the exit and the
                            // retry path takes over next scan.
                            let _ = child.wait();
                        }
                    }
                }
            }
        }
    }

    let frames: Vec<ShardFrame> = slots
        .iter_mut()
        // The loop above only exits once every slot holds a validated
        // frame. simlint: allow(no-unwrap-in-lib)
        .map(|s| s.frame.take().expect("all shards completed"))
        .collect();

    let merged = fold_frames(&survivors, leads, config, &plan, &splan, &frames, ShardMeta {
        shards: n_shards,
        reexecutions,
        frame_bytes,
    })?;
    Ok(splice_pruned(cells, leads, config, verdicts, Some(merged)))
}

/// Folds validated frames into a survivor-grid result by replaying the
/// single-process push sequence: per cell, per model, ascending global
/// run — each result fetched from its owning shard's frame. Aggregates
/// and (under fixed VR) CI trackers therefore consume the identical
/// float stream the in-process fold consumes, which is the whole
/// bit-identity argument.
fn fold_frames(
    survivors: &[GridCell],
    leads: &LeadTimeModel,
    config: &RunnerConfig,
    plan: &GridPlan,
    splan: &ShardPlan,
    frames: &[ShardFrame],
    meta: ShardMeta,
) -> Result<GridResult, String> {
    let runs = config.runs;
    let vr = config.vr;
    let vr_active = vr.is_active();

    // Per-frame lane bases: frame.cells is ascending global survivor
    // indices, and the child's subset plan assigns lanes in that order.
    let mut frame_base: Vec<Vec<Option<usize>>> = Vec::with_capacity(frames.len());
    for frame in frames {
        let mut base = vec![None; survivors.len()];
        let mut at = 0usize;
        for &c in &frame.cells {
            let c = c as usize;
            if c >= survivors.len() {
                return Err(format!("frame cell index {c} out of range"));
            }
            base[c] = Some(at);
            at += survivors[c].models.len();
        }
        if at != frame.lanes as usize {
            return Err("frame lane count does not match its cells".into());
        }
        frame_base.push(base);
    }

    let mut aggs: Vec<Aggregate> = (0..plan.lanes()).map(|_| Aggregate::new()).collect();
    let mut trackers: Vec<CiTracker> = if vr_active {
        (0..plan.lanes()).map(|_| CiTracker::new(&vr)).collect()
    } else {
        Vec::new()
    };

    for (c, cell) in survivors.iter().enumerate() {
        let group = plan.cell_group(c);
        for m in 0..cell.models.len() {
            let lane = plan.lane(c, m);
            for run in 0..runs {
                let owner = splan.owner(group, run);
                let frame = &frames[owner];
                let span = (frame.run_end - frame.run_start) as usize;
                let local = frame_base[owner][c]
                    .ok_or_else(|| format!("shard {owner} frame is missing cell {c}"))?;
                let idx = (local + m) * span + (run - frame.run_start as usize);
                let r = frame
                    .results
                    .get(idx)
                    .ok_or_else(|| format!("shard {owner} frame is missing run {run}"))?;
                aggs[lane].push(r);
                if vr_active {
                    trackers[lane].push(
                        fixed_stratum(run, &vr),
                        r.ledger.total_overhead_secs() / 3600.0,
                    );
                }
            }
        }
    }

    let cell_ci_rel: Vec<f64> = (0..survivors.len())
        .map(|c| {
            (0..survivors[c].models.len())
                .map(|m| {
                    let lane = plan.lane(c, m);
                    if vr_active {
                        trackers[lane].rel_ci(0.95)
                    } else {
                        rel_ci(&aggs[lane].total_hours)
                    }
                })
                .fold(0.0, f64::max)
        })
        .collect();
    let threads = frames.iter().map(|f| f.threads as usize).max().unwrap_or(1);
    let trace_generations = frames.iter().map(|f| f.trace_generations).sum();
    let trace_reuses = frames.iter().map(|f| f.trace_reuses).sum();

    let mut agg_it = aggs.into_iter();
    let results: Vec<CampaignResult> = survivors
        .iter()
        .map(|cell| CampaignResult {
            models: cell.models.clone(),
            aggregates: cell
                .models
                .iter()
                // Lanes are cell-major contiguous. simlint: allow(no-unwrap-in-lib)
                .map(|_| agg_it.next().expect("one aggregate per lane"))
                .collect(),
            threads,
        })
        .collect();

    Ok(GridResult {
        cells: results,
        labels: survivors.iter().map(|c| c.label.clone()).collect(),
        runs_per_cell: runs,
        cell_runs: vec![runs; survivors.len()],
        cell_ci_rel,
        threads,
        trace_groups: plan.trace_groups(),
        lanes: plan.lanes(),
        units: plan.units(),
        trace_generations,
        trace_reuses,
        leads_digest: leads.digest(),
        analytic_verdicts: vec![None; survivors.len()],
        cells_pruned: 0,
        shard_meta: Some(meta),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::OverheadLedger;
    use pckpt_simobs::RunObs;

    #[test]
    fn balanced_bounds_cover_and_balance() {
        for (total, parts) in [(1, 1), (5, 2), (7, 3), (12, 4), (3, 3)] {
            let b = balanced_bounds(total, parts);
            assert_eq!(b.len(), parts + 1);
            assert_eq!((b[0], b[parts]), (0, total));
            let sizes: Vec<usize> = b.windows(2).map(|w| w[1] - w[0]).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "unbalanced: {sizes:?}");
        }
    }

    #[test]
    fn plan_partitions_the_whole_space() {
        for (req, runs, groups, anti) in
            [(2, 10, 1, false), (4, 10, 2, false), (4, 7, 1, true), (3, 12, 5, false), (8, 3, 2, true)]
        {
            let vr = VrConfig {
                antithetic: anti,
                ..VrConfig::default()
            };
            let plan = ShardPlan::new(req, runs, groups, &vr);
            assert!(plan.shards() >= 1 && plan.shards() <= req);
            let cell_groups: Vec<usize> = (0..groups).collect();
            let mut seen = vec![vec![false; runs]; groups];
            for i in 0..plan.shards() {
                let asg = plan.assignment(i, &cell_groups);
                assert!(asg.run_start < asg.run_end, "empty run range on shard {i}");
                assert!(!asg.cells.is_empty(), "empty cell set on shard {i}");
                if anti {
                    assert_eq!(asg.run_start % 2, 0, "pair straddles shard {i}");
                }
                for &c in &asg.cells {
                    for run in asg.run_start..asg.run_end {
                        assert!(!seen[c][run], "(group {c}, run {run}) claimed twice");
                        seen[c][run] = true;
                        assert_eq!(plan.owner(c, run), i, "owner disagrees with assignment");
                    }
                }
            }
            assert!(
                seen.iter().all(|g| g.iter().all(|&s| s)),
                "uncovered (group, run) slots"
            );
        }
    }

    #[test]
    fn frame_roundtrip_and_tamper_detection() {
        let r = RunResult {
            ledger: OverheadLedger {
                ckpt_secs: 1.5,
                failures_total: 3,
                ..OverheadLedger::default()
            },
            wall_secs: 7200.0,
            ideal_secs: 7000.0,
            final_oci_secs: 600.0,
            obs: RunObs::default(),
        };
        let frame = ShardFrame {
            index: 1,
            shards: 2,
            binding: 0xDEAD_BEEF,
            cells: vec![0, 2],
            run_start: 4,
            run_end: 6,
            lanes: 3,
            results: vec![r.clone(), r.clone(), r.clone(), r.clone(), r.clone(), r],
            threads: 3,
            trace_generations: 12,
            trace_reuses: 4,
        };
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes).unwrap(), frame);
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
        let mut bad = bytes.clone();
        bad[10] ^= 0x01;
        assert!(decode_frame(&bad).is_err(), "corrupted byte went undetected");
    }

    #[test]
    fn fail_spec_parses_and_gates_on_attempt() {
        let _env = crate::env_test_lock();
        std::env::set_var("PCKPT_SHARD_FAIL", "1:truncate");
        std::env::remove_var("PCKPT_SHARD_ATTEMPT");
        assert_eq!(fail_mode_from_env(1), Some(FailMode::Truncate));
        assert_eq!(fail_mode_from_env(0), None, "other shards unaffected");
        std::env::set_var("PCKPT_SHARD_ATTEMPT", "2");
        assert_eq!(fail_mode_from_env(1), None, "retry must succeed");
        std::env::set_var("PCKPT_SHARD_FAIL", "1:kill:always");
        assert_eq!(fail_mode_from_env(1), Some(FailMode::Kill), "always persists");
        std::env::set_var("PCKPT_SHARD_FAIL", "1:explode");
        assert_eq!(fail_mode_from_env(1), None, "unknown modes are inert");
        std::env::remove_var("PCKPT_SHARD_FAIL");
        std::env::remove_var("PCKPT_SHARD_ATTEMPT");
    }

    #[test]
    fn shard_spec_roundtrips_through_env() {
        let _env = crate::env_test_lock();
        std::env::set_var("PCKPT_SHARD", "3/2x2");
        std::env::set_var("PCKPT_SHARD_OUT", "/tmp/f.frame");
        let spec = shard_spec_from_env().unwrap();
        assert_eq!(
            spec,
            ShardSpec {
                index: 3,
                run_splits: 2,
                group_splits: 2,
                out: PathBuf::from("/tmp/f.frame"),
            }
        );
        std::env::remove_var("PCKPT_SHARD");
        std::env::remove_var("PCKPT_SHARD_OUT");
        assert!(shard_spec_from_env().is_none());
    }
}

//! Overhead accounting and cross-run aggregation.
//!
//! The paper reports three overhead buckets per model (Figs. 4, 6, 7):
//!
//! * **checkpoint overhead** — wall time the application is blocked for
//!   checkpointing (BB writes, safeguard commits, whole p-ckpt rounds),
//!   plus the small LM runtime slowdown;
//! * **recomputation overhead** — work lost to failures and re-executed;
//! * **recovery overhead** — time spent restoring checkpoints and waiting
//!   for replacement nodes;
//!
//! and the **FT ratio** (Tables II & IV): successfully mitigated failures
//! over all failures.

use pckpt_simobs::{ObsAggregate, RunObs};
use pckpt_simrng::stats::Summary;

/// Per-run overhead ledger, filled in by the simulator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OverheadLedger {
    /// Application-blocking checkpoint time, seconds (BB writes +
    /// safeguard commits + p-ckpt rounds).
    pub ckpt_secs: f64,
    /// Extra compute time from the LM runtime slowdown, seconds (reported
    /// inside the checkpoint bucket, kept separate here for ablations).
    pub lm_slowdown_secs: f64,
    /// Re-executed work, seconds.
    pub recomp_secs: f64,
    /// Restore + replacement time, seconds.
    pub recovery_secs: f64,
    /// Genuine failures that struck the job.
    pub failures_total: u64,
    /// Genuine failures that were predicted (prediction delivered).
    pub failures_predicted: u64,
    /// Failures avoided outright by live migration.
    pub mitigated_by_lm: u64,
    /// Failures mitigated by a completed p-ckpt covering the failing node.
    pub mitigated_by_pckpt: u64,
    /// Failures mitigated by a completed safeguard checkpoint.
    pub mitigated_by_safeguard: u64,
    /// Proactive actions triggered by false-positive predictions.
    pub false_positive_actions: u64,
    /// p-ckpt rounds executed.
    pub pckpt_rounds: u64,
    /// Safeguard checkpoints executed.
    pub safeguard_ckpts: u64,
    /// Live migrations started.
    pub lm_started: u64,
    /// Live migrations aborted in favour of p-ckpt.
    pub lm_aborted: u64,
    /// Periodic checkpoints committed to the BBs.
    pub periodic_ckpts: u64,
}

impl OverheadLedger {
    /// Failures mitigated by any proactive mechanism.
    pub fn mitigated(&self) -> u64 {
        self.mitigated_by_lm + self.mitigated_by_pckpt + self.mitigated_by_safeguard
    }

    /// FT ratio: mitigated failures over all failures (1 when no failure
    /// occurred — nothing to mitigate).
    pub fn ft_ratio(&self) -> f64 {
        if self.failures_total == 0 {
            1.0
        } else {
            self.mitigated() as f64 / self.failures_total as f64
        }
    }

    /// Checkpoint bucket as reported in the figures (includes LM
    /// slowdown).
    pub fn ckpt_bucket_secs(&self) -> f64 {
        self.ckpt_secs + self.lm_slowdown_secs
    }

    /// Sum of all overhead buckets, seconds.
    pub fn total_overhead_secs(&self) -> f64 {
        self.ckpt_bucket_secs() + self.recomp_secs + self.recovery_secs
    }
}

/// Result of one simulated run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunResult {
    /// The overhead ledger.
    pub ledger: OverheadLedger,
    /// Total wall-clock time of the run, seconds.
    pub wall_secs: f64,
    /// Ideal (failure- and checkpoint-free) compute time, seconds.
    pub ideal_secs: f64,
    /// The OCI in force at the end of the run, seconds.
    pub final_oci_secs: f64,
    /// Always-on observability snapshot (event counts, queue high-water
    /// mark, fixed-bucket latency histograms). Fixed-size: carrying it
    /// here keeps the campaign steady state allocation-free.
    pub obs: RunObs,
}

impl RunResult {
    /// Overhead as a percentage of the ideal compute time.
    pub fn overhead_pct(&self) -> f64 {
        100.0 * self.ledger.total_overhead_secs() / self.ideal_secs
    }

    /// Consistency check: wall time must equal ideal + overheads (up to
    /// numeric slack). The simulator's accounting is validated against
    /// this in tests and (in debug builds) at the end of every run.
    pub fn accounting_residual_secs(&self) -> f64 {
        self.wall_secs - self.ideal_secs - self.ledger.total_overhead_secs()
    }
}

/// Aggregated statistics over many runs of the same configuration.
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// Checkpoint bucket, hours.
    pub ckpt_hours: Summary,
    /// Recomputation bucket, hours.
    pub recomp_hours: Summary,
    /// Recovery bucket, hours.
    pub recovery_hours: Summary,
    /// Total overhead, hours.
    pub total_hours: Summary,
    /// FT ratio (runs with zero failures count as 1).
    pub ft_ratio: Summary,
    /// Failures per run.
    pub failures: Summary,
    /// Failures avoided by LM per run.
    pub mitigated_lm: Summary,
    /// Failures mitigated by p-ckpt per run.
    pub mitigated_pckpt: Summary,
    /// Failures mitigated by safeguard checkpoints per run.
    pub mitigated_safeguard: Summary,
    /// Wall time, hours.
    pub wall_hours: Summary,
    /// Aggregated observability metrics (event counts, queue high-water
    /// mark, latency histograms) across the runs.
    pub obs: ObsAggregate,
    /// Per-run total-overhead samples (hours) for percentile error bars.
    total_samples: Vec<f64>,
}

impl Aggregate {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one run into the aggregate.
    pub fn push(&mut self, run: &RunResult) {
        const H: f64 = 3600.0;
        self.ckpt_hours.push(run.ledger.ckpt_bucket_secs() / H);
        self.recomp_hours.push(run.ledger.recomp_secs / H);
        self.recovery_hours.push(run.ledger.recovery_secs / H);
        self.total_hours.push(run.ledger.total_overhead_secs() / H);
        self.ft_ratio.push(run.ledger.ft_ratio());
        self.failures.push(run.ledger.failures_total as f64);
        self.mitigated_lm.push(run.ledger.mitigated_by_lm as f64);
        self.mitigated_pckpt.push(run.ledger.mitigated_by_pckpt as f64);
        self.mitigated_safeguard
            .push(run.ledger.mitigated_by_safeguard as f64);
        self.wall_hours.push(run.wall_secs / H);
        self.obs.push(&run.obs);
        self.total_samples
            .push(run.ledger.total_overhead_secs() / H);
    }

    /// Merges another aggregate (parallel reduction).
    pub fn merge(&mut self, other: &Aggregate) {
        self.ckpt_hours.merge(&other.ckpt_hours);
        self.recomp_hours.merge(&other.recomp_hours);
        self.recovery_hours.merge(&other.recovery_hours);
        self.total_hours.merge(&other.total_hours);
        self.ft_ratio.merge(&other.ft_ratio);
        self.failures.merge(&other.failures);
        self.mitigated_lm.merge(&other.mitigated_lm);
        self.mitigated_pckpt.merge(&other.mitigated_pckpt);
        self.mitigated_safeguard.merge(&other.mitigated_safeguard);
        self.wall_hours.merge(&other.wall_hours);
        self.obs.merge(&other.obs);
        self.total_samples.extend_from_slice(&other.total_samples);
    }

    /// Number of runs aggregated.
    pub fn runs(&self) -> u64 {
        self.total_hours.count()
    }

    /// Per-run mean FT ratio (runs without failures count as 1 — biased
    /// upward for lightly-failing workloads).
    pub fn ft_ratio_mean(&self) -> f64 {
        self.ft_ratio.mean()
    }

    /// Pooled FT ratio: total mitigations over total failures across all
    /// runs. This matches the paper's Tables II & IV, which report the
    /// fraction of *failures* mitigated rather than a per-run average.
    pub fn ft_ratio_pooled(&self) -> f64 {
        let failures = self.failures.sum();
        // Exact-zero guard on a sum of integral counts. simlint: allow(no-float-eq)
        if failures == 0.0 {
            return 1.0;
        }
        (self.mitigated_lm.sum() + self.mitigated_pckpt.sum() + self.mitigated_safeguard.sum())
            / failures
    }

    /// Pooled FT contribution of live migration alone (Fig. 8 numerator).
    pub fn ft_ratio_lm_pooled(&self) -> f64 {
        let failures = self.failures.sum();
        // Exact-zero guard on a sum of integral counts. simlint: allow(no-float-eq)
        if failures == 0.0 {
            return 0.0;
        }
        self.mitigated_lm.sum() / failures
    }

    /// Pooled FT contribution of p-ckpt alone (Fig. 8 numerator).
    pub fn ft_ratio_pckpt_pooled(&self) -> f64 {
        let failures = self.failures.sum();
        // Exact-zero guard on a sum of integral counts. simlint: allow(no-float-eq)
        if failures == 0.0 {
            return 0.0;
        }
        self.mitigated_pckpt.sum() / failures
    }

    /// The q-quantile of the per-run total overhead, hours (error bars
    /// for the figures; the paper reports means only).
    pub fn total_hours_quantile(&self, q: f64) -> f64 {
        if self.total_samples.is_empty() {
            return 0.0;
        }
        pckpt_simrng::Quantiles::new(&self.total_samples).quantile(q)
    }

    /// Mean overhead reduction (%) of this aggregate relative to a base
    /// aggregate: `100·(1 − total/total_base)`.
    pub fn reduction_vs(&self, base: &Aggregate) -> f64 {
        let b = base.total_hours.mean();
        // Exact-zero guard against division by zero. simlint: allow(no-float-eq)
        if b == 0.0 {
            return 0.0;
        }
        100.0 * (1.0 - self.total_hours.mean() / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run(total_fail: u64, lm: u64, pc: u64) -> RunResult {
        RunResult {
            ledger: OverheadLedger {
                ckpt_secs: 3600.0,
                lm_slowdown_secs: 36.0,
                recomp_secs: 1800.0,
                recovery_secs: 360.0,
                failures_total: total_fail,
                failures_predicted: total_fail,
                mitigated_by_lm: lm,
                mitigated_by_pckpt: pc,
                ..Default::default()
            },
            wall_secs: 100_000.0 + 5796.0,
            ideal_secs: 100_000.0,
            final_oci_secs: 5000.0,
            obs: RunObs::default(),
        }
    }

    #[test]
    fn ledger_derived_quantities() {
        let r = sample_run(10, 4, 3);
        assert_eq!(r.ledger.mitigated(), 7);
        assert!((r.ledger.ft_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(r.ledger.ckpt_bucket_secs(), 3636.0);
        assert_eq!(r.ledger.total_overhead_secs(), 5796.0);
        assert!((r.overhead_pct() - 5.796).abs() < 1e-9);
        assert!(r.accounting_residual_secs().abs() < 1e-9);
    }

    #[test]
    fn ft_ratio_with_no_failures_is_one() {
        let l = OverheadLedger::default();
        assert_eq!(l.ft_ratio(), 1.0);
    }

    #[test]
    fn aggregate_means_and_merge() {
        let mut a = Aggregate::new();
        a.push(&sample_run(10, 4, 3));
        a.push(&sample_run(10, 2, 2));
        assert_eq!(a.runs(), 2);
        assert!((a.ft_ratio_mean() - 0.55).abs() < 1e-12);
        assert!((a.total_hours.mean() - 5796.0 / 3600.0).abs() < 1e-9);

        let mut b = Aggregate::new();
        b.push(&sample_run(10, 10, 0));
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.runs(), 3);
        assert!((merged.ft_ratio_mean() - (0.7 + 0.4 + 1.0) / 3.0).abs() < 1e-12);
        // Pooled: (7 + 4 + 10) / 30.
        assert!((merged.ft_ratio_pooled() - 21.0 / 30.0).abs() < 1e-12);
        assert!((merged.ft_ratio_lm_pooled() - 16.0 / 30.0).abs() < 1e-12);
        assert!((merged.ft_ratio_pckpt_pooled() - 5.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn pooled_ft_handles_zero_failures() {
        let mut a = Aggregate::new();
        a.push(&sample_run(0, 0, 0));
        assert_eq!(a.ft_ratio_pooled(), 1.0);
        assert_eq!(a.ft_ratio_lm_pooled(), 0.0);
        assert_eq!(a.ft_ratio_pckpt_pooled(), 0.0);
    }

    #[test]
    fn pooled_vs_per_run_ft_bias() {
        // One run with failures (FT 0.5), one without (per-run FT 1.0):
        // per-run mean 0.75, pooled 0.5 — the paper's tables use pooled.
        let mut a = Aggregate::new();
        a.push(&sample_run(2, 1, 0));
        a.push(&sample_run(0, 0, 0));
        assert!((a.ft_ratio_mean() - 0.75).abs() < 1e-12);
        assert!((a.ft_ratio_pooled() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_over_runs() {
        let mut a = Aggregate::new();
        for fails in [2u64, 4, 6, 8, 10] {
            let mut r = sample_run(fails, 0, 0);
            r.ledger.recomp_secs = fails as f64 * 3600.0; // totals spread out
            a.push(&r);
        }
        let p50 = a.total_hours_quantile(0.5);
        let p0 = a.total_hours_quantile(0.0);
        let p1 = a.total_hours_quantile(1.0);
        assert!(p0 < p50 && p50 < p1);
        // Median total = 3636 + 6·3600 + 360 s ≈ 7.1 h.
        assert!((p50 - (3636.0 + 6.0 * 3600.0 + 360.0) / 3600.0).abs() < 1e-9);
        // Merging keeps the samples.
        let mut b = Aggregate::new();
        b.merge(&a);
        assert_eq!(b.total_hours_quantile(1.0), p1);
        assert_eq!(Aggregate::new().total_hours_quantile(0.5), 0.0);
    }

    #[test]
    fn reduction_vs_base() {
        let mut base = Aggregate::new();
        let mut run = sample_run(0, 0, 0);
        run.ledger.ckpt_secs = 7200.0; // total = 7200+36+1800+360 = 9396
        base.push(&run);
        let mut better = Aggregate::new();
        better.push(&sample_run(0, 0, 0)); // total = 5796
        let red = better.reduction_vs(&base);
        assert!((red - 100.0 * (1.0 - 5796.0 / 9396.0)).abs() < 1e-9);
        // Base against itself: 0 %.
        assert!(base.reduction_vs(&base).abs() < 1e-12);
    }
}

//! The analytic pre-filter: answering grid cells from Eqs. (4)–(8)
//! instead of simulating them.
//!
//! A grid cell asks a question; for many cells that question is the
//! paper's crossover question — *does p-ckpt beat live migration here?*
//! — and Observation 8's closed form answers it directly from (α, σ).
//! The pre-filter recognizes such cells, computes σ from the cell's own
//! lead-time model, predictor and θ (exactly as the simulator's Eq. (2)
//! machinery would), and asks the margin-aware
//! [`crossover_verdict`](pckpt_analysis::curve::crossover_verdict). Only
//! cells the analytic model cannot decide *confidently* — inside the
//! margin band around the threshold curves, or in the σ guard band where
//! the printed and exact Eq. (8) forms disagree — are simulated.
//!
//! # Soundness
//!
//! The grid engine's equivalence contract (see [`run_grid`]) guarantees
//! every cell's aggregate is bit-identical to a standalone campaign
//! *regardless of which other cells share the grid*. Removing pruned
//! cells from the simulated set therefore cannot change a surviving
//! cell's results by a single bit — pinned by the prefilter digest
//! oracle in `tests/grid_equivalence.rs`.
//!
//! # Conservatism
//!
//! The filter only prunes cells whose model set is exactly a crossover
//! comparison (`P1` and `M2` present, nothing beyond `B`/`M2`/`P1`), and
//! only when the analytic clearance exceeds the configured margin. Cells
//! with hybrid models (`P2`), safeguard checkpointing (`M1`), or any
//! non-comparison shape always simulate.
//!
//! [`run_grid`]: crate::runner::run_grid

use pckpt_analysis::curve::{crossover_verdict, Crossing};
use pckpt_failure::LeadTimeModel;

use crate::config::ModelKind;
use crate::oci;
use crate::runner::GridCell;

/// Default relative α-margin required before the filter trusts an
/// analytic verdict: the cell's α must clear the threshold curve by 15 %
/// in the direction of the verdict. Wide enough to absorb the
/// analytic-vs-simulated verdict gap measured in
/// `tests/grid_equivalence.rs` (the paper-shape agreement check), narrow
/// enough to prune the bulk of a crossover sweep.
pub const DEFAULT_MARGIN: f64 = 0.15;

/// What the analytic tier concluded about one grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticVerdict {
    /// `true` → p-ckpt wins the crossover (Eq. 4/7 with margin);
    /// `false` → live migration wins.
    pub pckpt_wins: bool,
    /// The σ the verdict was computed from (Eq. 2's accuracy-aware
    /// avoidable-failure fraction for this cell's θ and predictor).
    pub sigma: f64,
    /// The α the verdict was computed from (the cell's
    /// `lm_transfer_factor`).
    pub alpha: f64,
    /// Relative distance from α to the deciding threshold curve — how
    /// far past the margin the cell sits (≥ the configured margin by
    /// construction).
    pub clearance: f64,
}

/// Configuration of the analytic pre-filter (tentpole: the opt-in
/// `PCKPT_PREFILTER=analytic[:margin]` tier of [`run_grid`]).
///
/// [`run_grid`]: crate::runner::run_grid
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prefilter {
    /// Relative α-margin a verdict must clear (see [`DEFAULT_MARGIN`]).
    pub margin: f64,
}

impl Default for Prefilter {
    fn default() -> Self {
        Self::new(DEFAULT_MARGIN)
    }
}

impl Prefilter {
    /// A pre-filter with an explicit margin (≥ 0; 0 trusts the raw
    /// analytic crossover with no safety band).
    pub fn new(margin: f64) -> Self {
        assert!(
            margin.is_finite() && margin >= 0.0,
            "prefilter margin must be finite and non-negative, got {margin}"
        );
        Self { margin }
    }

    /// Reads `PCKPT_PREFILTER` from the environment: unset, empty or
    /// `off` → `None` (simulate everything, the default); `analytic` →
    /// the default margin; `analytic:<margin>` → an explicit margin.
    /// Anything else panics with the accepted grammar, so a typo fails a
    /// sweep loudly instead of silently simulating every cell.
    // simlint: config — PCKPT_PREFILTER is the sanctioned sweep-config
    // entry point; the parsed margin changes which cells are simulated,
    // never the per-cell results.
    pub fn from_env() -> Option<Self> {
        match std::env::var("PCKPT_PREFILTER") {
            Ok(spec) => Self::parse(&spec),
            Err(_) => None,
        }
    }

    /// Parses a `PCKPT_PREFILTER` value (see [`Self::from_env`]).
    pub fn parse(spec: &str) -> Option<Self> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "off" {
            return None;
        }
        if spec == "analytic" {
            return Some(Self::default());
        }
        if let Some(rest) = spec.strip_prefix("analytic:") {
            let margin: f64 = rest.trim().parse().unwrap_or_else(|_| {
                panic!("PCKPT_PREFILTER margin must be a number, got {rest:?}")
            });
            return Some(Self::new(margin));
        }
        panic!(
            "unrecognized PCKPT_PREFILTER value {spec:?} \
             (expected \"off\", \"analytic\", or \"analytic:<margin>\")"
        );
    }

    /// Renders this filter as a `PCKPT_PREFILTER` value that
    /// [`Self::parse`] maps back to an equal filter (`f64`'s `Display`
    /// round-trips exactly); the shard coordinator propagates it into
    /// children so both sides prune identically.
    pub fn spec(&self) -> String {
        format!("analytic:{}", self.margin)
    }

    /// The analytic answer for `cell`, if the filter can decide it
    /// confidently: `None` → simulate (not a crossover cell, σ in the
    /// guard band, or inside the margin band around the threshold).
    pub fn cell_verdict(&self, cell: &GridCell, leads: &LeadTimeModel) -> Option<AnalyticVerdict> {
        if !crossover_cell(cell) {
            return None;
        }
        let p = &cell.params;
        let sigma = oci::sigma(leads, &p.predictor, p.theta_secs(), p.lead_scale);
        let alpha = p.lm_transfer_factor;
        match crossover_verdict(alpha, sigma, self.margin) {
            Crossing::Pckpt { clearance } => Some(AnalyticVerdict {
                pckpt_wins: true,
                sigma,
                alpha,
                clearance,
            }),
            Crossing::Lm { clearance } => Some(AnalyticVerdict {
                pckpt_wins: false,
                sigma,
                alpha,
                clearance,
            }),
            Crossing::Uncertain => None,
        }
    }
}

/// Is `cell` exactly the paper's crossover comparison — p-ckpt vs live
/// migration (optionally with the B baseline alongside)?
///
/// Both contenders must be present (a lone `P1` or lone `M2` cell asks
/// an absolute-overhead question the crossover algebra does not answer)
/// and no model outside `{B, M2, P1}` may ride along (`M1`'s safeguard
/// writes and `P2`'s hybrid scheduling are outside Observation 8's
/// model).
fn crossover_cell(cell: &GridCell) -> bool {
    let has = |m: ModelKind| cell.models.contains(&m);
    has(ModelKind::P1)
        && has(ModelKind::M2)
        && cell
            .models
            .iter()
            .all(|&m| matches!(m, ModelKind::B | ModelKind::M2 | ModelKind::P1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimParams;
    use pckpt_workloads::Application;

    fn cell(app: &str, models: &[ModelKind]) -> GridCell {
        let params = SimParams::paper_defaults(ModelKind::B, Application::by_name(app).unwrap());
        GridCell::new(params, models)
    }

    const CROSSOVER: &[ModelKind] = &[ModelKind::B, ModelKind::M2, ModelKind::P1];

    #[test]
    fn parse_accepts_the_documented_grammar() {
        assert_eq!(Prefilter::parse(""), None);
        assert_eq!(Prefilter::parse("off"), None);
        assert_eq!(Prefilter::parse(" off "), None);
        assert_eq!(
            Prefilter::parse("analytic"),
            Some(Prefilter::new(DEFAULT_MARGIN))
        );
        assert_eq!(
            Prefilter::parse("analytic:0.3"),
            Some(Prefilter::new(0.3))
        );
        assert_eq!(Prefilter::parse("analytic:0"), Some(Prefilter::new(0.0)));
    }

    #[test]
    #[should_panic(expected = "unrecognized PCKPT_PREFILTER")]
    fn parse_rejects_typos_loudly() {
        let _ = Prefilter::parse("analytics");
    }

    #[test]
    #[should_panic(expected = "margin must be a number")]
    fn parse_rejects_bad_margins_loudly() {
        let _ = Prefilter::parse("analytic:lots");
    }

    #[test]
    fn non_crossover_cells_always_simulate() {
        let pf = Prefilter::default();
        let leads = LeadTimeModel::desh_default();
        // Missing one contender, hybrid riding along, safeguard riding
        // along, single model: all simulate.
        for models in [
            vec![ModelKind::B, ModelKind::P1],
            vec![ModelKind::B, ModelKind::M2],
            vec![ModelKind::B, ModelKind::M2, ModelKind::P1, ModelKind::P2],
            vec![ModelKind::M1, ModelKind::M2, ModelKind::P1],
            vec![ModelKind::P1],
        ] {
            let c = cell("CHIMERA", &models);
            assert_eq!(pf.cell_verdict(&c, &leads), None, "{models:?}");
        }
    }

    #[test]
    fn chimera_crossover_is_decided_for_pckpt() {
        // CHIMERA at the paper default α = 3: σ ≈ 0.5, printed threshold
        // ≈ 1.24, exact ≈ 2.41 — α clears the higher curve by ~24 %.
        let pf = Prefilter::default();
        let leads = LeadTimeModel::desh_default();
        let v = pf
            .cell_verdict(&cell("CHIMERA", CROSSOVER), &leads)
            .expect("CHIMERA at alpha=3 is analytically decidable");
        assert!(v.pckpt_wins);
        assert!(v.clearance >= DEFAULT_MARGIN);
        assert!(v.sigma > 0.3 && v.sigma < 0.61, "sigma = {}", v.sigma);
        assert!((v.alpha - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pop_crossover_is_decided_for_lm() {
        // POP's θ is tiny → σ hits the 0.90 cap, far above SIGMA_MAX:
        // LM avoids essentially every failure and wins outright.
        let pf = Prefilter::default();
        let leads = LeadTimeModel::desh_default();
        let v = pf
            .cell_verdict(&cell("POP", CROSSOVER), &leads)
            .expect("POP is analytically decidable");
        assert!(!v.pckpt_wins);
        assert!(v.sigma > 0.61, "sigma = {}", v.sigma);
    }

    #[test]
    fn margin_widening_turns_decisions_into_simulations() {
        // CHIMERA clears the exact threshold by ~24 %; a 50 % margin
        // must push it back into the simulated set.
        let leads = LeadTimeModel::desh_default();
        let c = cell("CHIMERA", CROSSOVER);
        assert!(Prefilter::new(0.15).cell_verdict(&c, &leads).is_some());
        assert_eq!(Prefilter::new(0.50).cell_verdict(&c, &leads), None);
    }

    #[test]
    fn from_env_reads_the_documented_variable() {
        // The environment is process-global: hold the shared env lock
        // across the mutate–assert–restore span so this cannot race the
        // runner's env tests.
        let _env = crate::env_test_lock();
        std::env::set_var("PCKPT_PREFILTER", "analytic:0.2");
        assert_eq!(Prefilter::from_env(), Some(Prefilter::new(0.2)));
        std::env::remove_var("PCKPT_PREFILTER");
        assert_eq!(Prefilter::from_env(), None);
    }
}

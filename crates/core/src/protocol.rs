//! The p-ckpt round state machine (Sec. VI, Fig. 5).
//!
//! A *round* is one coordinated prioritized checkpoint:
//!
//! 1. a vulnerable node broadcasts a p-ckpt request; every node blocks;
//! 2. **phase 1** — vulnerable nodes commit to the PFS one at a time,
//!    ordered by a priority queue keyed on their lead-time deadline
//!    (earliest predicted failure first: "a lower lead time implies a
//!    higher priority"). Nodes predicted to fail while the round is
//!    running join the queue;
//! 3. **phase 2** — after the last vulnerable commit (the `pfs-commit`
//!    broadcast), the remaining healthy nodes commit collectively.
//!
//! This type is pure bookkeeping — the simulator supplies all timing — so
//! the protocol logic is unit-testable in isolation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pckpt_desim::SimTime;

/// A vulnerable node queued in (or served by) a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vulnerable {
    /// Job-local node index.
    pub node: u32,
    /// Predicted failure time (the priority key; earlier = served first).
    pub deadline: SimTime,
    /// Index of the genuine failure this prediction belongs to, or `None`
    /// for a false positive.
    pub fail_idx: Option<usize>,
}

/// Which phase the round is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Vulnerable nodes committing one at a time by priority.
    Phase1,
    /// Healthy nodes committing collectively.
    Phase2,
}

#[derive(Debug, PartialEq, Eq)]
struct QueueEntry {
    deadline: SimTime,
    seq: u64,
    entry: Vulnerable,
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

/// One coordinated prioritized checkpoint in progress.
#[derive(Debug)]
pub struct PckptRound {
    level_secs: f64,
    started: SimTime,
    phase: Phase,
    queue: BinaryHeap<Reverse<QueueEntry>>,
    writer: Option<Vulnerable>,
    committed: Vec<Vulnerable>,
    phase2_joiners: Vec<Vulnerable>,
    next_seq: u64,
}

impl PckptRound {
    /// Opens a round checkpointing the application state at `level_secs`
    /// of completed work, at wall time `started`.
    pub fn new(level_secs: f64, started: SimTime) -> Self {
        Self {
            level_secs,
            started,
            phase: Phase::Phase1,
            queue: BinaryHeap::new(),
            writer: None,
            // Both vecs start at capacity 0 (no heap storage); steady
            // state recycles rounds through reset(), never this path.
            committed: Vec::new(), // simlint: allow(no-alloc-in-hot-loop)
            phase2_joiners: Vec::new(), // simlint: allow(no-alloc-in-hot-loop)
            next_seq: 0,
        }
    }

    /// Reopens a finished (or aborted) round in place for a new
    /// coordinated checkpoint, retaining the queue's and the commit
    /// lists' allocations — the recycling path that keeps round churn
    /// allocation-free across a campaign run.
    pub fn reset(&mut self, level_secs: f64, started: SimTime) {
        self.level_secs = level_secs;
        self.started = started;
        self.phase = Phase::Phase1;
        self.queue.clear();
        self.writer = None;
        self.committed.clear();
        self.phase2_joiners.clear();
        self.next_seq = 0;
    }

    /// The work level this round snapshots.
    pub fn level_secs(&self) -> f64 {
        self.level_secs
    }

    /// When the round started (its blocking time is `now − started`).
    pub fn started(&self) -> SimTime {
        self.started
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Registers a vulnerable node.
    ///
    /// During phase 1 it joins the priority queue. During phase 2 its data
    /// is already being written collectively, so it is recorded as covered
    /// by the round's completion instead.
    pub fn enqueue(&mut self, entry: Vulnerable) {
        match self.phase {
            Phase::Phase1 => {
                self.queue.push(Reverse(QueueEntry {
                    deadline: entry.deadline,
                    seq: self.next_seq,
                    entry,
                }));
                self.next_seq += 1;
            }
            Phase::Phase2 => self.phase2_joiners.push(entry),
        }
    }

    /// Pops the highest-priority vulnerable node and makes it the current
    /// phase-1 writer. Returns `None` when the queue is empty (time for
    /// phase 2). Panics if called while a writer is active or in phase 2.
    pub fn next_writer(&mut self) -> Option<Vulnerable> {
        assert_eq!(self.phase, Phase::Phase1, "no phase-1 writers in phase 2");
        assert!(self.writer.is_none(), "a writer is already active");
        let next = self.queue.pop().map(|Reverse(q)| q.entry);
        self.writer = next;
        next
    }

    /// Marks the current writer's PFS commit complete (the mitigation
    /// point for its failure). Returns the committed entry.
    pub fn writer_committed(&mut self) -> Vulnerable {
        // State-machine invariant, documented to panic. simlint: allow(no-unwrap-in-lib)
        let w = self.writer.take().expect("writer_committed without writer");
        self.committed.push(w);
        w
    }

    /// Transitions to phase 2 (the `pfs-commit` broadcast moment).
    /// Panics if a writer is still active or the queue is non-empty.
    pub fn begin_phase2(&mut self) {
        assert_eq!(self.phase, Phase::Phase1);
        assert!(self.writer.is_none(), "phase 2 with an active writer");
        assert!(self.queue.is_empty(), "phase 2 with queued vulnerable nodes");
        self.phase = Phase::Phase2;
    }

    /// Number of vulnerable nodes that committed in phase 1.
    pub fn committed_count(&self) -> usize {
        self.committed.len()
    }

    /// True if `node` committed its checkpoint in phase 1 of this round.
    pub fn is_committed(&self, node: u32) -> bool {
        self.committed.iter().any(|v| v.node == node)
    }

    /// All failure indices covered once the round *completes*: phase-1
    /// commits plus phase-2 joiners.
    pub fn covered_fail_idxs(&self) -> impl Iterator<Item = usize> + '_ {
        self.committed
            .iter()
            .chain(&self.phase2_joiners)
            .filter_map(|v| v.fail_idx)
    }

    /// Failure indices of phase-1 commits only (covered as soon as the
    /// commit lands, even before the round completes).
    pub fn committed_fail_idxs(&self) -> impl Iterator<Item = usize> + '_ {
        self.committed.iter().filter_map(|v| v.fail_idx)
    }

    /// Number of vulnerable nodes still waiting in the phase-1 priority
    /// queue (excluding the active writer). Recorded as the payload of
    /// each `PHASE1_COMMIT` trace record: the backlog at commit time
    /// shows how contended the round was.
    pub fn queued_count(&self) -> usize {
        self.queue.len()
    }

    /// True if phase 1 has no queued nodes and no active writer.
    pub fn phase1_drained(&self) -> bool {
        self.queue.is_empty() && self.writer.is_none()
    }

    /// Vulnerable entries still queued (for re-arming after an abort).
    pub fn drain_queue(&mut self) -> Vec<Vulnerable> {
        let mut out: Vec<Vulnerable> = self.queue.drain().map(|Reverse(q)| q.entry).collect();
        out.sort_by_key(|v| v.deadline);
        if let Some(w) = self.writer.take() {
            out.insert(0, w);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn v(node: u32, deadline: f64, idx: Option<usize>) -> Vulnerable {
        Vulnerable {
            node,
            deadline: t(deadline),
            fail_idx: idx,
        }
    }

    #[test]
    fn writers_served_by_earliest_deadline() {
        let mut r = PckptRound::new(100.0, t(0.0));
        r.enqueue(v(1, 50.0, Some(0)));
        r.enqueue(v(2, 20.0, Some(1)));
        r.enqueue(v(3, 80.0, Some(2)));
        assert_eq!(r.next_writer().unwrap().node, 2);
        r.writer_committed();
        assert_eq!(r.next_writer().unwrap().node, 1);
        r.writer_committed();
        assert_eq!(r.next_writer().unwrap().node, 3);
        r.writer_committed();
        assert!(r.next_writer().is_none());
        assert_eq!(r.committed_count(), 3);
    }

    #[test]
    fn queued_count_tracks_backlog_not_writer() {
        let mut r = PckptRound::new(0.0, t(0.0));
        assert_eq!(r.queued_count(), 0);
        r.enqueue(v(1, 50.0, Some(0)));
        r.enqueue(v(2, 20.0, Some(1)));
        assert_eq!(r.queued_count(), 2);
        // Popping a writer moves it out of the backlog.
        r.next_writer();
        assert_eq!(r.queued_count(), 1);
        r.writer_committed();
        assert_eq!(r.queued_count(), 1);
        r.next_writer();
        r.writer_committed();
        assert_eq!(r.queued_count(), 0);
    }

    #[test]
    fn fifo_between_equal_deadlines() {
        let mut r = PckptRound::new(0.0, t(0.0));
        r.enqueue(v(7, 10.0, None));
        r.enqueue(v(8, 10.0, None));
        assert_eq!(r.next_writer().unwrap().node, 7);
        r.writer_committed();
        assert_eq!(r.next_writer().unwrap().node, 8);
    }

    #[test]
    fn late_arrival_with_shorter_deadline_jumps_queue() {
        let mut r = PckptRound::new(0.0, t(0.0));
        r.enqueue(v(1, 100.0, Some(0)));
        r.enqueue(v(2, 200.0, Some(1)));
        // Node 1 starts writing.
        assert_eq!(r.next_writer().unwrap().node, 1);
        // A new prediction with a very short lead arrives mid-write.
        r.enqueue(v(3, 10.0, Some(2)));
        r.writer_committed();
        // Node 3 overtakes node 2.
        assert_eq!(r.next_writer().unwrap().node, 3);
    }

    #[test]
    fn phase_transitions_and_coverage() {
        let mut r = PckptRound::new(42.0, t(1.0));
        r.enqueue(v(1, 30.0, Some(5)));
        r.next_writer();
        r.writer_committed();
        assert!(r.phase1_drained());
        r.begin_phase2();
        assert_eq!(r.phase(), Phase::Phase2);
        // A prediction arriving in phase 2 is covered by round completion.
        r.enqueue(v(9, 60.0, Some(6)));
        let covered: Vec<usize> = r.covered_fail_idxs().collect();
        assert_eq!(covered, vec![5, 6]);
        let committed: Vec<usize> = r.committed_fail_idxs().collect();
        assert_eq!(committed, vec![5]);
        assert!(r.is_committed(1));
        assert!(!r.is_committed(9));
        assert_eq!(r.level_secs(), 42.0);
        assert_eq!(r.started(), t(1.0));
    }

    #[test]
    fn false_positives_carry_no_fail_idx() {
        let mut r = PckptRound::new(0.0, t(0.0));
        r.enqueue(v(1, 10.0, None));
        r.next_writer();
        r.writer_committed();
        assert_eq!(r.covered_fail_idxs().count(), 0);
        assert_eq!(r.committed_count(), 1);
    }

    #[test]
    fn drain_queue_returns_writer_first_then_deadline_order() {
        let mut r = PckptRound::new(0.0, t(0.0));
        r.enqueue(v(1, 30.0, Some(0)));
        r.enqueue(v(2, 10.0, Some(1)));
        r.enqueue(v(3, 20.0, Some(2)));
        let w = r.next_writer().unwrap();
        assert_eq!(w.node, 2);
        let drained = r.drain_queue();
        let nodes: Vec<u32> = drained.iter().map(|e| e.node).collect();
        assert_eq!(nodes, vec![2, 3, 1]);
        assert!(r.phase1_drained());
    }

    #[test]
    fn reset_reopens_a_dirty_round_cleanly() {
        let mut r = PckptRound::new(10.0, t(0.0));
        r.enqueue(v(1, 30.0, Some(0)));
        r.enqueue(v(2, 50.0, Some(1)));
        r.next_writer();
        r.writer_committed();
        r.next_writer();
        r.writer_committed();
        r.begin_phase2();
        r.enqueue(v(3, 70.0, Some(2)));
        r.reset(99.0, t(5.0));
        assert_eq!(r.level_secs(), 99.0);
        assert_eq!(r.started(), t(5.0));
        assert_eq!(r.phase(), Phase::Phase1);
        assert_eq!(r.committed_count(), 0);
        assert_eq!(r.covered_fail_idxs().count(), 0);
        assert!(r.phase1_drained());
        // The recycled round behaves exactly like a fresh one.
        r.enqueue(v(4, 20.0, Some(3)));
        r.enqueue(v(5, 10.0, Some(4)));
        assert_eq!(r.next_writer().unwrap().node, 5);
    }

    #[test]
    #[should_panic(expected = "phase 2 with queued")]
    fn phase2_requires_drained_queue() {
        let mut r = PckptRound::new(0.0, t(0.0));
        r.enqueue(v(1, 10.0, None));
        r.begin_phase2();
    }

    #[test]
    #[should_panic(expected = "a writer is already active")]
    fn single_writer_invariant() {
        let mut r = PckptRound::new(0.0, t(0.0));
        r.enqueue(v(1, 10.0, None));
        r.enqueue(v(2, 20.0, None));
        r.next_writer();
        r.next_writer();
    }
}

//! Optimal checkpoint intervals (Eqs. 1 & 2) and the σ lead-time analysis.
//!
//! Young's first-order formula gives the compute time between periodic
//! checkpoints that balances checkpoint cost against expected recomputation
//! loss:
//!
//! ```text
//! t_opt = sqrt(2 · t_ckpt_bb / (λ·c))                  (Eq. 1)
//! ```
//!
//! where `t_ckpt_bb` is the (synchronous) BB write time and `λ·c` the job's
//! failure rate. The hybrid models (M2/P2) avoid a fraction σ of failures
//! outright via live migration — avoided failures never trigger recovery —
//! so their effective failure rate drops and the interval stretches:
//!
//! ```text
//! t_opt = sqrt(2 · t_ckpt_bb / (λ·c·(1 − σ)))          (Eq. 2)
//! ```
//!
//! σ is "the percentage of failures that can be predicted with enough lead
//! time in excess of the time required to migrate a process" — i.e.
//! `recall × P(lead > θ)`, with θ the LM latency. The paper deliberately
//! does *not* credit p-ckpt-handled failures in the OCI (they still cause
//! a recovery), which is why P1 keeps Eq. 1.

use pckpt_failure::{LeadTimeModel, Predictor};

/// Young's optimal checkpoint interval (Eq. 1), in seconds of computation.
///
/// * `t_ckpt_bb_secs` — synchronous checkpoint commit time to the BBs;
/// * `job_failure_rate_per_hour` — λ·c.
///
/// ```
/// // CHIMERA on Summit: 135 s BB writes, one failure per ~58 h
/// // → checkpoint every ≈2.1 h.
/// let oci = pckpt_core::oci::young_oci_secs(135.0, 1.0 / 58.0);
/// assert!((oci / 3600.0 - 2.09).abs() < 0.01);
/// ```
pub fn young_oci_secs(t_ckpt_bb_secs: f64, job_failure_rate_per_hour: f64) -> f64 {
    assert!(
        t_ckpt_bb_secs > 0.0 && job_failure_rate_per_hour > 0.0,
        "OCI inputs must be positive"
    );
    let rate_per_sec = job_failure_rate_per_hour / 3600.0;
    (2.0 * t_ckpt_bb_secs / rate_per_sec).sqrt()
}

/// LM-adjusted optimal checkpoint interval (Eq. 2).
///
/// `sigma` is the fraction of failures avoided by live migration,
/// `0 ≤ sigma < 1`.
pub fn lm_adjusted_oci_secs(
    t_ckpt_bb_secs: f64,
    job_failure_rate_per_hour: f64,
    sigma: f64,
) -> f64 {
    assert!((0.0..1.0).contains(&sigma), "sigma must be in [0, 1)");
    young_oci_secs(t_ckpt_bb_secs, job_failure_rate_per_hour * (1.0 - sigma))
}

/// How σ for Eq. (2) is estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SigmaPolicy {
    /// The paper's Eq. (2) as written: σ is the fraction of failures
    /// whose *lead time* exceeds θ — prediction accuracy is **not**
    /// factored in. Observation 9 shows the consequence: as the
    /// false-negative rate grows, LM-assisted models "overestimate the
    /// number of failures they can handle and keep the checkpoint
    /// interval larger".
    #[default]
    LeadTimeOnly,
    /// The paper's stated future work: "the failure prediction accuracy
    /// factor needs to be included in (2)". σ = recall × P(lead > θ), so
    /// a lossy predictor shortens the interval back toward Eq. (1).
    AccuracyAware,
}

/// σ is capped below 1 so Eq. (2) stays finite even for applications
/// whose θ is negligible (small apps: essentially every lead suffices).
pub const SIGMA_CAP: f64 = 0.90;

/// Computes σ for Eq. (2): the fraction of failures live migration is
/// expected to avoid, under the chosen [`SigmaPolicy`].
///
/// `lead_scale` folds in the lead-time variability experiments: scaled
/// leads exceed θ iff the unscaled lead exceeds θ / scale.
pub fn sigma_with_policy(
    policy: SigmaPolicy,
    leads: &LeadTimeModel,
    predictor: &Predictor,
    theta_secs: f64,
    lead_scale: f64,
) -> f64 {
    assert!(theta_secs >= 0.0 && lead_scale > 0.0);
    let p_lead_ok = leads.survival(theta_secs / lead_scale);
    let raw = match policy {
        SigmaPolicy::LeadTimeOnly => p_lead_ok,
        SigmaPolicy::AccuracyAware => predictor.recall() * p_lead_ok,
    };
    raw.min(SIGMA_CAP)
}

/// σ under the accuracy-aware policy (kept for the analytical model,
/// which compares *actual* avoidable fractions).
pub fn sigma(
    leads: &LeadTimeModel,
    predictor: &Predictor,
    theta_secs: f64,
    lead_scale: f64,
) -> f64 {
    sigma_with_policy(
        SigmaPolicy::AccuracyAware,
        leads,
        predictor,
        theta_secs,
        lead_scale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_formula_reference_value() {
        // CHIMERA-ish: t_bb = 135 s, λ·c = 1/58 h⁻¹.
        let oci = young_oci_secs(135.0, 1.0 / 58.0);
        // sqrt(2·135·58·3600) ≈ 7510 s ≈ 2.09 h.
        assert!((oci - 7510.0).abs() < 15.0, "oci = {oci}");
    }

    #[test]
    fn young_scaling_laws() {
        let base = young_oci_secs(100.0, 0.1);
        // 4× checkpoint cost → 2× interval.
        assert!((young_oci_secs(400.0, 0.1) / base - 2.0).abs() < 1e-9);
        // 4× failure rate → half the interval.
        assert!((young_oci_secs(100.0, 0.4) / base - 0.5).abs() < 1e-9);
    }

    #[test]
    fn eq2_stretches_interval() {
        let t_bb = 135.0;
        let rate = 1.0 / 58.0;
        let base = young_oci_secs(t_bb, rate);
        // σ = 0.44 (CHIMERA's calibrated value) → +34 % interval.
        let adj = lm_adjusted_oci_secs(t_bb, rate, 0.44);
        let stretch = adj / base;
        assert!((stretch - (1.0f64 / 0.56).sqrt()).abs() < 1e-9);
        assert!(stretch > 1.3 && stretch < 1.4);
        // σ = 0 degenerates to Eq. 1.
        assert_eq!(lm_adjusted_oci_secs(t_bb, rate, 0.0), base);
        // σ = 0.85 (small apps) → ×2.58.
        let small = lm_adjusted_oci_secs(t_bb, rate, 0.85) / base;
        assert!((small - (1.0f64 / 0.15).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn sigma_reflects_leads_and_recall() {
        let leads = LeadTimeModel::desh_default();
        let predictor = pckpt_failure::Predictor::aarohi_default();
        // Tiny θ: essentially all predicted failures avoidable → σ ≈ recall.
        let s_small = sigma(&leads, &predictor, 0.2, 1.0);
        assert!((s_small - 0.85).abs() < 0.01, "sigma = {s_small}");
        // CHIMERA's θ ≈ 59.4 s: σ ≈ 0.85 × P(L > 59.4) ≈ 0.5.
        let s_chimera = sigma(&leads, &predictor, 59.4, 1.0);
        assert!((0.42..=0.56).contains(&s_chimera), "sigma = {s_chimera}");
        // +50 % leads push σ up.
        let s_longer = sigma(&leads, &predictor, 59.4, 1.5);
        assert!(s_longer > s_chimera);
        // Huge θ → σ → 0.
        assert!(sigma(&leads, &predictor, 10_000.0, 1.0) < 1e-6);
    }

    #[test]
    fn sigma_is_capped() {
        let leads = LeadTimeModel::desh_default();
        let perfect = pckpt_failure::Predictor::new(1.0, 0.0, 0.0);
        let s = sigma(&leads, &perfect, 0.0, 1.0);
        assert!(s <= SIGMA_CAP, "Eq. 2 must stay finite");
        let s2 = sigma_with_policy(SigmaPolicy::LeadTimeOnly, &leads, &perfect, 0.0, 1.0);
        assert_eq!(s2, SIGMA_CAP);
    }

    #[test]
    fn lead_only_policy_ignores_recall_and_reproduces_paper_oci_inflation() {
        let leads = LeadTimeModel::desh_default();
        let lossy = pckpt_failure::Predictor::new(0.6, 0.0, 0.0);
        let perfect = pckpt_failure::Predictor::new(1.0, 0.0, 0.0);
        let a = sigma_with_policy(SigmaPolicy::LeadTimeOnly, &leads, &lossy, 30.0, 1.0);
        let b = sigma_with_policy(SigmaPolicy::LeadTimeOnly, &leads, &perfect, 30.0, 1.0);
        assert_eq!(a, b, "Eq. 2 as printed must ignore prediction accuracy");
        let aware = sigma_with_policy(SigmaPolicy::AccuracyAware, &leads, &lossy, 30.0, 1.0);
        assert!((aware - 0.6 * b).abs() < 1e-12);
        // Paper: "the reduced failure rate increases the optimal
        // checkpoint interval by ≈54-340%". With Eq. 2 as printed:
        // CHIMERA's σ ≈ 0.59 → +56 %; small apps hit the σ cap 0.90
        // → ×1/√0.1 ≈ ×3.16 → +216 % (the cap also keeps the paper's
        // "≈42-70 % checkpoint-overhead reduction" band intact:
        // 1 − 1/3.16 = 68 %).
        let chimera = sigma_with_policy(SigmaPolicy::LeadTimeOnly, &leads, &perfect, 59.4, 1.0);
        let stretch_large = (1.0f64 / (1.0 - chimera)).sqrt();
        assert!(
            (1.45..=1.7).contains(&stretch_large),
            "large-app OCI stretch = {stretch_large}"
        );
        let stretch_small = (1.0f64 / (1.0 - SIGMA_CAP)).sqrt();
        assert!((stretch_small - 3.16).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        let _ = young_oci_secs(100.0, 0.0);
    }
}

//! Canonical configuration fingerprints — the binding-digest normal
//! form shared by shard frames and the campaign service cache.
//!
//! PR 9 introduced the *binding digest*: a canonical byte rendering of
//! everything a result depends on (seed, runs, VR selection, prefilter,
//! lead-time model, cell identities), hashed with FNV-1a, so a frame
//! from a different campaign can never fold. The campaign service
//! (`crates/service`) needs the same normal form to key its
//! content-addressed result cache and its sweep journal, so the builder
//! lives here and both layers render configurations through the same
//! code path instead of duplicating it.
//!
//! Two digest widths serve two purposes:
//!
//! * [`Canon::digest`] — 64-bit FNV-1a, used by the shard binding digest
//!   where the coordinator *also* compares every structural field, so
//!   the digest is a tamper check, not the identity.
//! * [`Canon::fingerprint`] — 128 bits from two independently seeded
//!   FNV-1a passes, used where the digest **is** the identity (cache
//!   keys, journal headers): a 64-bit birthday collision at cache scale
//!   would silently serve the wrong cell, so the key is wide.

use crate::prefilter::Prefilter;
use crate::runner::{GridCell, RunnerConfig};

/// Version byte folded into every cell/campaign fingerprint. Bump when
/// the canonical rendering (or anything the simulation semantics bind
/// to, e.g. the `Debug` layout of `SimParams`) changes incompatibly:
/// old cache entries then miss instead of being served stale.
pub const FINGERPRINT_VERSION: u16 = 1;

/// FNV-1a offset basis (the standard 64-bit one).
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// Independent second basis for the fingerprint's low word (the golden
/// ratio, a nothing-up-my-sleeve constant).
const FNV_BASIS_ALT: u64 = 0x9e37_79b9_7f4a_7c15;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` from an explicit basis.
pub fn fnv1a_from(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over `bytes` (the frame and binding digest primitive).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_from(FNV_BASIS, bytes)
}

/// A 128-bit content-address: two independently seeded FNV-1a passes
/// over the same canonical bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint {
    /// High word (standard FNV-1a basis).
    pub hi: u64,
    /// Low word (alternate basis).
    pub lo: u64,
}

impl Fingerprint {
    /// The fingerprint as one `u128` (map keys).
    pub fn as_u128(&self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }

    /// 32-hex-digit rendering — stable cache file names.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses [`hex`](Self::hex) output back.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.len() != 32 {
            return None;
        }
        Some(Self {
            hi: u64::from_str_radix(&s[..16], 16).ok()?,
            lo: u64::from_str_radix(&s[16..], 16).ok()?,
        })
    }
}

/// Canonical byte-buffer builder: every multi-byte value is rendered
/// little-endian, every variable-length field is length-prefixed, so
/// distinct field sequences can never collide structurally.
#[derive(Debug, Default, Clone)]
pub struct Canon {
    buf: Vec<u8>,
}

impl Canon {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn push_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn push_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn push_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn push_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern (exact, `-0.0 ≠ 0.0`).
    pub fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.push_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn push_str(&mut self, s: &str) {
        self.push_bytes(s.as_bytes());
    }

    /// Appends one grid cell's full identity: label, model list, and the
    /// complete `Debug` rendering of its parameters (stable within one
    /// binary — the gap a binary upgrade opens is closed by
    /// [`FINGERPRINT_VERSION`] and the leads digest travelling alongside).
    pub fn push_cell(&mut self, cell: &GridCell) {
        self.push_str(&cell.label);
        self.push_u64(cell.models.len() as u64);
        for m in &cell.models {
            self.push_str(m.name());
        }
        self.push_str(&format!("{:?}", cell.params));
    }

    /// Splices another builder's bytes in verbatim (no length prefix —
    /// the other builder's own framing carries over unchanged).
    pub fn push_rendered(&mut self, other: &Canon) {
        self.buf.extend_from_slice(&other.buf);
    }

    /// The canonical bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// 64-bit FNV-1a of the canonical bytes.
    pub fn digest(&self) -> u64 {
        fnv1a(&self.buf)
    }

    /// 128-bit content-address of the canonical bytes.
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint {
            hi: fnv1a_from(FNV_BASIS, &self.buf),
            lo: fnv1a_from(FNV_BASIS_ALT, &self.buf),
        }
    }
}

/// Renders the campaign-wide execution context every cell result binds
/// to: fingerprint version, seed, run count, VR selection, lead-time
/// model digest, and the analytic prefilter spec. The adaptive knobs are
/// deliberately *not* rendered here — adaptive campaigns are never
/// cached per cell (their per-cell results depend on grid-pooled pilot
/// variances), and callers must gate on `config.vr.adaptive.is_none()`
/// before fingerprinting.
fn push_context(
    canon: &mut Canon,
    config: &RunnerConfig,
    leads_digest: u64,
    prefilter: Option<&Prefilter>,
) {
    canon.push_u16(FINGERPRINT_VERSION);
    canon.push_u64(config.base_seed);
    canon.push_u64(config.runs as u64);
    canon.push_u8(u8::from(config.vr.antithetic));
    canon.push_u32(config.vr.strata);
    canon.push_u64(leads_digest);
    canon.push_str(&prefilter.map(|p| p.spec()).unwrap_or_default());
}

/// Content-address of one cell's complete simulated result under
/// `config`: the key of the service's result cache.
///
/// Covers everything a cell's per-run result stream depends on — and,
/// by the grid-equivalence contract (`tests/grid_equivalence.rs`),
/// *nothing else*: a cell's aggregate is bit-identical regardless of
/// which other cells share the pool, which is exactly what makes
/// per-cell caching sound.
pub fn cell_fingerprint(
    cell: &GridCell,
    leads_digest: u64,
    config: &RunnerConfig,
    prefilter: Option<&Prefilter>,
) -> Fingerprint {
    let mut canon = Canon::new();
    push_context(&mut canon, config, leads_digest, prefilter);
    canon.push_cell(cell);
    canon.fingerprint()
}

/// Content-address of a whole campaign request (ordered cell list +
/// execution context): the identity a sweep journal binds to, so a
/// journal can only ever resume the exact campaign that wrote it.
pub fn campaign_fingerprint(
    cells: &[GridCell],
    leads_digest: u64,
    config: &RunnerConfig,
    prefilter: Option<&Prefilter>,
) -> Fingerprint {
    let mut canon = Canon::new();
    push_context(&mut canon, config, leads_digest, prefilter);
    canon.push_u64(cells.len() as u64);
    for cell in cells {
        canon.push_cell(cell);
    }
    canon.fingerprint()
}

/// Every cell fingerprint plus the campaign fingerprint in one pass.
///
/// Identical to calling [`cell_fingerprint`] per cell and
/// [`campaign_fingerprint`] once — the canonical byte streams are the
/// same — but each cell is rendered exactly once (the `Debug` rendering
/// of `SimParams` is by far the most expensive part of fingerprinting),
/// so a request with `n` cells pays `n` renders instead of `2n`.
pub fn campaign_fingerprints(
    cells: &[GridCell],
    leads_digest: u64,
    config: &RunnerConfig,
    prefilter: Option<&Prefilter>,
) -> (Vec<Fingerprint>, Fingerprint) {
    let mut context = Canon::new();
    push_context(&mut context, config, leads_digest, prefilter);
    let mut campaign = context.clone();
    campaign.push_u64(cells.len() as u64);
    let fps = cells
        .iter()
        .map(|cell| {
            let mut rendered = Canon::new();
            rendered.push_cell(cell);
            campaign.push_rendered(&rendered);
            let mut per_cell = context.clone();
            per_cell.push_rendered(&rendered);
            per_cell.fingerprint()
        })
        .collect();
    (fps, campaign.fingerprint())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelKind, SimParams};
    use pckpt_workloads::Application;

    fn cell(app: &str, scale: f64) -> GridCell {
        let mut params =
            SimParams::paper_defaults(ModelKind::B, Application::by_name(app).unwrap());
        params.lead_scale = scale;
        GridCell::new(params, &[ModelKind::B, ModelKind::P2])
            .with_label(format!("{app}@{scale}"))
    }

    #[test]
    fn fingerprint_hex_roundtrip() {
        let fp = Fingerprint { hi: 0x0123_4567_89ab_cdef, lo: 0xfedc_ba98_7654_3210 };
        assert_eq!(Fingerprint::from_hex(&fp.hex()), Some(fp));
        assert_eq!(Fingerprint::from_hex("zz"), None);
    }

    #[test]
    fn cell_fingerprint_separates_every_axis() {
        let leads = pckpt_failure::LeadTimeModel::desh_default();
        let base = RunnerConfig::new(8, 42);
        let fp = |c: &GridCell, cfg: &RunnerConfig| cell_fingerprint(c, leads.digest(), cfg, None);
        let a = fp(&cell("XGC", 1.0), &base);
        assert_eq!(a, fp(&cell("XGC", 1.0), &base), "deterministic");
        assert_ne!(a, fp(&cell("XGC", 1.5), &base), "params differ");
        assert_ne!(a, fp(&cell("POP", 1.0), &base), "app differs");
        assert_ne!(a, fp(&cell("XGC", 1.0), &RunnerConfig::new(9, 42)), "runs differ");
        assert_ne!(a, fp(&cell("XGC", 1.0), &RunnerConfig::new(8, 43)), "seed differs");
        let mut vr = base;
        vr.vr.antithetic = true;
        assert_ne!(a, fp(&cell("XGC", 1.0), &vr), "VR mode differs");
        let pf = Prefilter::parse("analytic:0.2");
        assert_ne!(
            a,
            cell_fingerprint(&cell("XGC", 1.0), leads.digest(), &base, pf.as_ref()),
            "prefilter differs"
        );
        assert_ne!(a, cell_fingerprint(&cell("XGC", 1.0), 7, &base, None), "leads differ");
    }

    #[test]
    fn batched_fingerprints_match_the_one_shot_forms() {
        let leads = pckpt_failure::LeadTimeModel::desh_default();
        let cfg = RunnerConfig::new(8, 42);
        let cells = [cell("XGC", 1.0), cell("POP", 0.5), cell("XGC", 1.5)];
        let pf = Prefilter::parse("analytic:0.2");
        for prefilter in [None, pf.as_ref()] {
            let (fps, campaign) =
                campaign_fingerprints(&cells, leads.digest(), &cfg, prefilter);
            for (c, fp) in cells.iter().zip(&fps) {
                assert_eq!(*fp, cell_fingerprint(c, leads.digest(), &cfg, prefilter));
            }
            assert_eq!(
                campaign,
                campaign_fingerprint(&cells, leads.digest(), &cfg, prefilter)
            );
        }
    }

    #[test]
    fn campaign_fingerprint_binds_cell_order() {
        let leads = pckpt_failure::LeadTimeModel::desh_default();
        let cfg = RunnerConfig::new(4, 1);
        let (a, b) = (cell("XGC", 1.0), cell("POP", 0.5));
        let fwd = campaign_fingerprint(&[a.clone(), b.clone()], leads.digest(), &cfg, None);
        let rev = campaign_fingerprint(&[b, a], leads.digest(), &cfg, None);
        assert_ne!(fwd, rev);
    }
}

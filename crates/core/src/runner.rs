//! Monte-Carlo campaign driver.
//!
//! The paper averages every reported number over 1000 simulation runs
//! (Sec. V). This module provides:
//!
//! * [`run_many`] — N runs of one configuration, aggregated;
//! * [`run_models`] — N runs of *several models over identical failure
//!   traces* (paired comparison: every model faces the same fates, which
//!   removes between-model sampling noise from Figs. 6–8);
//!
//! both thread-parallel with deterministic per-run RNG streams: run *i*
//! always draws from `master.split(i)` regardless of thread count, so
//! results are bit-identical from laptop to CI.

use std::thread;

use pckpt_failure::{FailureTrace, LeadTimeModel, TraceConfig};
use pckpt_simrng::SimRng;

use crate::config::{ModelKind, SimParams};
use crate::metrics::Aggregate;
use crate::sim::CrSim;

/// Campaign size and execution parameters.
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfig {
    /// Number of Monte-Carlo runs.
    pub runs: usize,
    /// Master seed; run *i* uses stream `split(i)`.
    pub base_seed: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

impl RunnerConfig {
    /// `runs` runs from a seed, auto-threaded.
    pub fn new(runs: usize, base_seed: u64) -> Self {
        Self {
            runs,
            base_seed,
            threads: 0,
        }
    }

    fn effective_threads(&self) -> usize {
        let t = if self.threads == 0 {
            thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        };
        t.max(1).min(self.runs.max(1))
    }
}

/// Results of a multi-model campaign over paired traces.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The models, in the order requested.
    pub models: Vec<ModelKind>,
    /// One aggregate per model (index-aligned with `models`).
    pub aggregates: Vec<Aggregate>,
}

impl CampaignResult {
    /// The aggregate for `model`, if it was part of the campaign.
    pub fn get(&self, model: ModelKind) -> Option<&Aggregate> {
        self.models
            .iter()
            .position(|&m| m == model)
            .map(|i| &self.aggregates[i])
    }

    /// Overhead reduction (%) of `model` relative to `base`.
    pub fn reduction(&self, model: ModelKind, base: ModelKind) -> Option<f64> {
        Some(self.get(model)?.reduction_vs(self.get(base)?))
    }
}

fn trace_config(params: &SimParams) -> TraceConfig {
    TraceConfig::new(
        params.distribution,
        params.app.nodes,
        params.app.compute_hours * params.horizon_factor,
    )
    .with_lead_scale(params.lead_scale)
    .with_projection(params.projection)
    .with_node_selection(params.node_selection)
    .with_lead_error(params.lead_error_cv)
}

/// Runs one configuration `config.runs` times and aggregates.
pub fn run_many(params: &SimParams, leads: &LeadTimeModel, config: &RunnerConfig) -> Aggregate {
    let campaign = run_models(params, &[params.model], leads, config);
    // run_models returns one aggregate per requested model. simlint: allow(no-unwrap-in-lib)
    campaign.aggregates.into_iter().next().expect("one model")
}

/// Runs several models over paired failure traces.
///
/// `base_params.model` is ignored; each entry of `models` is simulated
/// with otherwise identical parameters. Trace generation consumes the
/// run's RNG stream once, so every model sees the same failures, leads,
/// prediction outcomes and false positives.
pub fn run_models(
    base_params: &SimParams,
    models: &[ModelKind],
    leads: &LeadTimeModel,
    config: &RunnerConfig,
) -> CampaignResult {
    assert!(!models.is_empty(), "at least one model required");
    assert!(config.runs > 0, "at least one run required");
    let master = SimRng::seed_from(config.base_seed);
    let threads = config.effective_threads();
    let tcfg = trace_config(base_params);

    // Workers ship per-run results home; the fold happens on the main
    // thread in run order, so the aggregate is *bit-identical* for any
    // thread count (float accumulation is order-sensitive at the ulp
    // level, and "same seed, same numbers" is part of this crate's
    // contract).
    let per_run: Vec<Vec<crate::metrics::RunResult>> = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let master = master.clone();
            let handle = scope.spawn(move || {
                let mut out: Vec<(usize, Vec<crate::metrics::RunResult>)> = Vec::new();
                let mut run = worker;
                while run < config.runs {
                    let mut rng = master.split(run as u64);
                    let trace =
                        FailureTrace::generate(&tcfg, leads, &base_params.predictor, &mut rng);
                    // Every model of this run sees the same background-
                    // traffic stream (paired comparison).
                    let bg_rng = rng.split(0xB6);
                    let results: Vec<crate::metrics::RunResult> = models
                        .iter()
                        .map(|&model| {
                            let mut p = base_params.clone();
                            p.model = model;
                            CrSim::new(p, trace.clone(), leads)
                                .with_bg_rng(bg_rng.clone())
                                .run()
                        })
                        .collect();
                    out.push((run, results));
                    run += threads;
                }
                out
            });
            handles.push(handle);
        }
        let mut indexed: Vec<Option<Vec<crate::metrics::RunResult>>> =
            (0..config.runs).map(|_| None).collect();
        for handle in handles {
            // A worker panic is already fatal; re-raise it here. simlint: allow(no-unwrap-in-lib)
            for (run, results) in handle.join().expect("worker panicked") {
                indexed[run] = Some(results);
            }
        }
        indexed
            .into_iter()
            // The strided loops above cover 0..runs exactly. simlint: allow(no-unwrap-in-lib)
            .map(|r| r.expect("every run produced"))
            .collect()
    });
    let mut aggregates: Vec<Aggregate> = models.iter().map(|_| Aggregate::new()).collect();
    for results in &per_run {
        for (agg, result) in aggregates.iter_mut().zip(results) {
            agg.push(result);
        }
    }

    CampaignResult {
        models: models.to_vec(),
        aggregates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pckpt_workloads::Application;

    fn app_params(model: ModelKind, app: &str) -> SimParams {
        SimParams::paper_defaults(model, Application::by_name(app).unwrap())
    }

    #[test]
    fn run_many_aggregates_requested_runs() {
        let leads = LeadTimeModel::desh_default();
        let agg = run_many(
            &app_params(ModelKind::B, "POP"),
            &leads,
            &RunnerConfig::new(8, 42),
        );
        assert_eq!(agg.runs(), 8);
        assert!(agg.total_hours.mean() > 0.0);
    }

    #[test]
    fn deterministic_regardless_of_thread_count() {
        let leads = LeadTimeModel::desh_default();
        let mut one = RunnerConfig::new(6, 7);
        one.threads = 1;
        let mut four = RunnerConfig::new(6, 7);
        four.threads = 4;
        let a = run_many(&app_params(ModelKind::P2, "XGC"), &leads, &one);
        let b = run_many(&app_params(ModelKind::P2, "XGC"), &leads, &four);
        assert_eq!(a.runs(), b.runs());
        assert!((a.total_hours.mean() - b.total_hours.mean()).abs() < 1e-9);
        assert!((a.ft_ratio_mean() - b.ft_ratio_mean()).abs() < 1e-12);
    }

    #[test]
    fn paired_campaign_shares_traces() {
        let leads = LeadTimeModel::desh_default();
        // XGC sees ~2.7 failures per 240 h run under Titan thinning —
        // enough for the paired comparison to be meaningful at 20 runs.
        let campaign = run_models(
            &app_params(ModelKind::B, "XGC"),
            &[ModelKind::B, ModelKind::P2],
            &leads,
            &RunnerConfig::new(20, 11),
        );
        let b = campaign.get(ModelKind::B).unwrap();
        let p2 = campaign.get(ModelKind::P2).unwrap();
        // Identical traces → identical failure counts.
        assert_eq!(b.failures.mean(), p2.failures.mean());
        assert!(b.failures.mean() > 1.0, "need failures for the comparison");
        assert!(campaign.get(ModelKind::M1).is_none());
        // P2 mitigates; B does not.
        assert!(p2.ft_ratio_mean() > b.ft_ratio_mean());
        let red = campaign.reduction(ModelKind::P2, ModelKind::B).unwrap();
        assert!(red > 0.0, "P2 must reduce overhead vs B, got {red}%");
    }

    #[test]
    fn different_seeds_differ() {
        let leads = LeadTimeModel::desh_default();
        let a = run_many(
            &app_params(ModelKind::B, "XGC"),
            &leads,
            &RunnerConfig::new(5, 1),
        );
        let b = run_many(
            &app_params(ModelKind::B, "XGC"),
            &leads,
            &RunnerConfig::new(5, 2),
        );
        assert!(
            (a.failures.mean() - b.failures.mean()).abs() > 0.0
                || (a.total_hours.mean() - b.total_hours.mean()).abs() > 1e-12
        );
    }
}

//! Monte-Carlo campaign driver.
//!
//! The paper averages every reported number over 1000 simulation runs
//! (Sec. V). This module provides:
//!
//! * [`run_many`] — N runs of one configuration, aggregated;
//! * [`run_models`] — N runs of *several models over identical failure
//!   traces* (paired comparison: every model faces the same fates, which
//!   removes between-model sampling noise from Figs. 6–8);
//! * [`run_grid`] — an entire sweep (cells × models × runs) through one
//!   work-stealing pool, with cross-cell failure-trace sharing;
//!
//! all thread-parallel with deterministic per-run RNG streams: run *i*
//! always draws from `master.split(i)` regardless of thread count, so
//! results are bit-identical from laptop to CI.
//!
//! ### Execution model
//!
//! A grid is planned into **lanes** (one per `(cell, model)` pair) and
//! **execution units**. Most lanes are their own unit; a lane whose
//! simulation is *provably identical* to an earlier lane's — same
//! prediction-blind model, same trace group, parameters equal up to the
//! lead-time view — joins that lane's unit and receives a bit-identical
//! copy of its per-run result instead of recomputing it (the base model
//! B swept across lead scales is the canonical case; see
//! [`GridPlan`]). The flattened `(run × unit)` index space is handed out
//! by atomic chunk-claiming (work stealing) to one long-lived pool, so a
//! whole table/figure bin saturates the machine instead of
//! barrier-syncing at every sweep point.
//!
//! Each worker owns the per-lane simulators it has touched, one event
//! queue, and one trace cache slot per **trace group** (cells with equal
//! scale-invariant [`TraceConfig`] core + predictor; the lead-time model
//! is shared grid-wide). Within a group the per-run trace is generated
//! once per worker and reused across cells — for groups that differ only
//! in `lead_scale`, through a scale-invariant
//! [`TraceCore`](pckpt_failure::TraceCore) whose per-cell views are
//! RNG-free transforms. After the first visit to each unit the steady
//! state performs no heap allocation (enforced by a counting-allocator
//! test in `crates/core/tests/alloc_free.rs`).
//!
//! Workers publish per-run results into a preallocated lock-free slab:
//! every `(lane, run)` slot is written by exactly one worker (the claim
//! counter partitions the item space), so slot writes need no mutex. The
//! fold into aggregates happens on the main thread in ascending run
//! order per lane, which keeps every cell's aggregate **bit-identical**
//! to a standalone [`run_models`] call for any thread count and any
//! work-stealing interleaving.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::thread;

use pckpt_desim::{run_with_queue, EventQueue};
use pckpt_failure::{FailureTrace, LeadTimeModel, Predictor, TraceConfig, TraceCore};
use pckpt_simobs::{ObsAggregate, Recorder, Recording};
use pckpt_simrng::{t_critical, PairedSummary, SimRng, StratifiedSummary, Summary};

use crate::config::{ModelKind, SimParams};
use crate::metrics::{Aggregate, RunResult};
use crate::prefilter::{AnalyticVerdict, Prefilter};
use crate::sim::{CrSim, Ev};

/// Variance-reduction strategy selection (the `PCKPT_VR` / `PCKPT_RUNS`
/// knobs). The default — everything off — reproduces the fixed-run
/// engine bit-for-bit; every non-default mode is a *different estimator*
/// of the same quantities, deterministic in `(seed, config)` across any
/// thread count, but not bit-comparable to the plain mode.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VrConfig {
    /// Generate runs in antithetic (U, 1−U) pairs: run `2p+1` replays run
    /// `2p`'s stream with every uniform reflected, and normal variates
    /// switch from Box–Muller to the inverse CDF so reflection negates
    /// them exactly (see [`SimRng::set_reflected`]).
    pub antithetic: bool,
    /// Stratify the first-failure-time quantile into this many
    /// equal-probability strata (0 = off): each run's first uniform draw
    /// is confined to its stratum's sub-interval and per-stratum
    /// summaries fold with weights `1/K`.
    pub strata: u32,
    /// Sequential CI-driven run allocation (`PCKPT_RUNS=auto`); `None`
    /// runs the fixed `RunnerConfig::runs` count.
    pub adaptive: Option<AdaptiveConfig>,
}

impl VrConfig {
    /// Is any variance-reduction strategy active?
    pub fn is_active(&self) -> bool {
        *self != Self::default()
    }
}

/// Parameters of the adaptive (sequential) run-allocation procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Stop a cell when every lane's Student-t CI half-width on the
    /// primary metric (total overhead hours) is below this fraction of
    /// its mean.
    pub rel_target: f64,
    /// Confidence level of the stopping CI (one of 0.90 / 0.95 / 0.99).
    pub confidence: f64,
    /// Runs per sequential batch; stopping is re-evaluated on the
    /// main-thread fold after each batch.
    pub batch: usize,
    /// Hard per-cell run cap (a cell that never converges stops here).
    pub max_runs: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            rel_target: 0.01,
            confidence: 0.95,
            batch: 32,
            max_runs: 4096,
        }
    }
}

/// How a `PCKPT_RUNS` value resolves: a fixed count or adaptive
/// CI-driven allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunsSpec {
    /// A plain positive run count.
    Fixed(usize),
    /// `auto[:target[:cap]]` — sequential allocation to a relative CI
    /// target with a hard cap.
    Auto(AdaptiveConfig),
}

/// Parses a `PCKPT_RUNS` value: a positive integer (`"500"`), or
/// `"auto"` / `"auto:0.02"` / `"auto:0.02:8192"` for adaptive allocation
/// with an optional relative CI target and run cap. Returns `None` for
/// anything unparsable (callers fall back to their defaults).
pub fn parse_runs_spec(s: &str) -> Option<RunsSpec> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix("auto") {
        let mut a = AdaptiveConfig::default();
        let mut parts = rest.strip_prefix(':').map(|r| r.split(':')).into_iter().flatten();
        if let Some(t) = parts.next() {
            a.rel_target = t.parse::<f64>().ok().filter(|&t| t > 0.0 && t < 1.0)?;
        }
        if let Some(c) = parts.next() {
            a.max_runs = c.parse::<usize>().ok().filter(|&n| n >= a.batch)?;
        }
        if parts.next().is_some() || (!rest.is_empty() && !rest.starts_with(':')) {
            return None;
        }
        return Some(RunsSpec::Auto(a));
    }
    s.parse::<usize>().ok().filter(|&n| n > 0).map(RunsSpec::Fixed)
}

/// Renders `vr` as a `PCKPT_VR` value that [`parse_vr_spec`] parses back
/// to the same antithetic/strata selection, or `None` when both are off.
/// Adaptive allocation lives in `PCKPT_RUNS` and is not rendered here
/// (the shard coordinator never propagates it — adaptive sweeps fall
/// back in-process; see `crate::shard`).
pub(crate) fn vr_env_spec(vr: &VrConfig) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    if vr.antithetic {
        parts.push("antithetic".to_string());
    }
    if vr.strata > 0 {
        parts.push(format!("stratified:{}", vr.strata));
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(","))
    }
}

/// Parses a `PCKPT_VR` value: a comma-separated subset of `antithetic`
/// and `stratified[:K]` (K defaults to 8). Returns `None` — leaving the
/// caller's config untouched — when any token is unknown, so a typo
/// cannot silently half-enable a mode. `adaptive` is never set here;
/// that lives in `PCKPT_RUNS`.
pub fn parse_vr_spec(s: &str) -> Option<VrConfig> {
    let mut vr = VrConfig::default();
    for token in s.split(',') {
        let token = token.trim();
        match token {
            "" | "off" => {}
            "antithetic" => vr.antithetic = true,
            "stratified" => vr.strata = 8,
            _ => {
                let k = token.strip_prefix("stratified:")?;
                vr.strata = k.parse::<u32>().ok().filter(|&k| k > 0)?;
            }
        }
    }
    Some(vr)
}

/// Campaign size and execution parameters.
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfig {
    /// Number of Monte-Carlo runs (the per-cell cap in adaptive mode).
    pub runs: usize,
    /// Master seed; run *i* uses stream `split(i)`.
    pub base_seed: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Variance-reduction strategy selection (default: all off, which is
    /// bit-identical to the pre-VR engine).
    pub vr: VrConfig,
}

impl RunnerConfig {
    /// `runs` runs from a seed, auto-threaded, no variance reduction.
    pub fn new(runs: usize, base_seed: u64) -> Self {
        Self {
            runs,
            base_seed,
            threads: 0,
            vr: VrConfig::default(),
        }
    }

    /// Applies the `PCKPT_VR` and `PCKPT_RUNS=auto` environment knobs on
    /// top of this config (a plain numeric `PCKPT_RUNS` is the caller's
    /// business and is ignored here; unset or unparsable values leave
    /// the config untouched).
    // simlint: config — PCKPT_VR / PCKPT_RUNS are the sanctioned
    // variance-reduction config reads: they select the estimator and the
    // run-allocation procedure, which are part of the experiment
    // definition (like the seed), never a hidden input to any single
    // run's computation.
    pub fn with_env_vr(mut self) -> Self {
        if let Some(spec) = std::env::var("PCKPT_VR")
            .ok()
            .and_then(|v| parse_vr_spec(&v))
        {
            self.vr.antithetic = spec.antithetic;
            self.vr.strata = spec.strata;
        }
        if let Some(RunsSpec::Auto(a)) = std::env::var("PCKPT_RUNS")
            .ok()
            .and_then(|v| parse_runs_spec(&v))
        {
            self.runs = a.max_runs;
            self.vr.adaptive = Some(a);
        }
        self
    }

    /// Worker count for a plain `runs`-item campaign (kept for tests;
    /// [`run_grid`] sizes by the full grid item space).
    #[cfg(test)]
    fn effective_threads(&self) -> usize {
        self.effective_threads_for(self.runs)
    }

    /// Worker count for an item space of `items` independent work units
    /// (a lone campaign has one item per run; a grid has
    /// `runs × execution units`). Public so the campaign service can
    /// report a thread count for fully cache-served sweeps.
    // simlint: config — PCKPT_THREADS is a sanctioned execution-config
    // read: it sizes the worker pool and never reaches a result digest
    // (fold order is lane-major regardless of thread count).
    pub fn effective_threads_for(&self, items: usize) -> usize {
        let t = if self.threads == 0 {
            // `PCKPT_THREADS` overrides auto-detection (containers and CI
            // runners often report the host's core count, not the cgroup
            // quota); an unset/unparsable value falls through to the
            // detected parallelism.
            let from_env = std::env::var("PCKPT_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n > 0);
            from_env.unwrap_or_else(|| {
                thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            })
        } else {
            self.threads
        };
        t.max(1).min(items.max(1))
    }
}

/// Results of a multi-model campaign over paired traces.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The models, in the order requested.
    pub models: Vec<ModelKind>,
    /// One aggregate per model (index-aligned with `models`).
    pub aggregates: Vec<Aggregate>,
    /// Worker threads the campaign actually ran on (after the
    /// `PCKPT_THREADS` override, core auto-detection, and the
    /// items-per-thread clamp).
    pub threads: usize,
}

impl CampaignResult {
    /// The aggregate for `model`, if it was part of the campaign **and**
    /// the cell was simulated (a cell pruned by the analytic pre-filter
    /// keeps its model list but carries no aggregates).
    pub fn get(&self, model: ModelKind) -> Option<&Aggregate> {
        self.models
            .iter()
            .position(|&m| m == model)
            .and_then(|i| self.aggregates.get(i))
    }

    /// Overhead reduction (%) of `model` relative to `base`.
    pub fn reduction(&self, model: ModelKind, base: ModelKind) -> Option<f64> {
        Some(self.get(model)?.reduction_vs(self.get(base)?))
    }
}

/// Derives run `run`'s RNG stream under `vr`.
///
/// Plain mode is exactly `master.split(run)`. Antithetic mode maps runs
/// to (pair, member): both members of pair `p` seed from
/// `master.split(p)`, the odd member with every uniform reflected, and
/// both with inverse-CDF normals so reflection negates normal variates
/// bit-exactly, and both marked paired so trace generators keep the
/// mirrored streams draw-aligned ([`SimRng::set_paired`]). A nonzero
/// stratum count arms a one-shot remap of the
/// run's *first* uniform draw — the first Weibull inter-arrival, i.e.
/// the first-failure-time quantile — into stratum `stratum`'s
/// sub-interval (armed after the reflection flag, so pair members share
/// a stratum; see [`SimRng::set_next_stratum`]).
fn vr_run_rng(master: &SimRng, run: usize, vr: &VrConfig, stratum: u32) -> SimRng {
    let mut rng = if vr.antithetic {
        let mut r = master.split((run / 2) as u64);
        r.set_inverse_normals(true);
        r.set_paired(true);
        r.set_reflected(run % 2 == 1);
        r
    } else {
        master.split(run as u64)
    };
    if vr.strata > 0 {
        rng.set_next_stratum(stratum, vr.strata);
    }
    rng
}

/// The static (non-adaptive) stratum assignment for run `run`: pairs (or
/// single runs) round-robin through the strata, so any prefix of the run
/// sequence is balanced to within one sample per stratum.
pub(crate) fn fixed_stratum(run: usize, vr: &VrConfig) -> u32 {
    if vr.strata == 0 {
        return 0;
    }
    let idx = if vr.antithetic { run / 2 } else { run };
    (idx % vr.strata as usize) as u32
}

fn trace_config(params: &SimParams) -> TraceConfig {
    TraceConfig::new(
        params.distribution,
        params.app.nodes,
        params.app.compute_hours * params.horizon_factor,
    )
    .with_lead_scale(params.lead_scale)
    .with_projection(params.projection)
    .with_node_selection(params.node_selection)
    .with_lead_error(params.lead_error_cv)
}

/// Runs one simulator over one trace: the shared per-model execution
/// step of both the single-cell arena and the grid worker. Resets the
/// queue and the simulator in place, drives the event loop, and injects
/// the queue's observability counters before extracting the result.
// simlint: hot
fn execute_sim(
    sim: &mut CrSim,
    queue: &mut EventQueue<Ev>,
    trace: &FailureTrace,
    bg_rng: SimRng,
) -> RunResult {
    queue.reset();
    sim.reset_for_run(trace, bg_rng);
    let sched_before = queue.scheduled_total();
    let (_, handled) = run_with_queue(sim, queue, 10_000_000);
    sim.set_queue_obs(
        handled,
        queue.scheduled_total() - sched_before,
        queue.depth_hwm() as u64,
    );
    sim.result()
}

/// A reusable per-worker simulation arena: one [`CrSim`] per model, one
/// event queue, and one failure-trace buffer, all built once and recycled
/// across runs.
///
/// Building a `CrSim` is expensive in fluid mode (the PFS capacity table
/// is memoized per instance) and every fresh build allocates queues, maps
/// and trace storage. The arena pays those costs once per worker; each
/// subsequent [`run_one`](RunArena::run_one) resets state in place and —
/// after the first few runs have grown the buffers — allocates nothing.
pub struct RunArena<'a> {
    leads: &'a LeadTimeModel,
    base: SimParams,
    tcfg: TraceConfig,
    sims: Vec<CrSim>,
    queue: EventQueue<Ev>,
    trace: FailureTrace,
}

impl<'a> RunArena<'a> {
    /// Builds an arena simulating each of `models` with otherwise
    /// identical parameters (`base_params.model` is ignored).
    pub fn new(base_params: &SimParams, models: &[ModelKind], leads: &'a LeadTimeModel) -> Self {
        assert!(!models.is_empty(), "at least one model required");
        let sims = models
            .iter()
            .map(|&model| {
                let mut p = base_params.clone();
                p.model = model;
                CrSim::new(p, FailureTrace::default(), leads)
            })
            .collect();
        Self {
            leads,
            base: base_params.clone(),
            tcfg: trace_config(base_params),
            sims,
            queue: EventQueue::new(),
            trace: FailureTrace::default(),
        }
    }

    /// Number of models this arena simulates per run.
    pub fn models(&self) -> usize {
        self.sims.len()
    }

    /// Executes run `run` for every model, writing one result per model
    /// into `out` (index-aligned with the arena's model list).
    ///
    /// Draw-for-draw identical to building everything fresh: the run's
    /// RNG stream is `master.split(run)`, trace generation consumes it
    /// first, and every model shares the same background-traffic stream
    /// `rng.split(0xB6)` (paired comparison).
    // simlint: hot
    pub fn run_one(&mut self, master: &SimRng, run: usize, out: &mut [Option<RunResult>]) {
        assert_eq!(out.len(), self.sims.len(), "one slot per model");
        let mut rng = master.split(run as u64);
        self.trace
            .generate_into(&self.tcfg, self.leads, &self.base.predictor, &mut rng);
        let bg_rng = rng.split(0xB6);
        for (sim, slot) in self.sims.iter_mut().zip(out.iter_mut()) {
            *slot = Some(execute_sim(sim, &mut self.queue, &self.trace, bg_rng.clone()));
        }
    }

    /// Installs a structured-event recorder on the event queue and every
    /// model simulator in this arena. With the `trace` feature disabled
    /// the recorder is a ZST and this is a no-op.
    pub fn install_recorder(&mut self, rec: Recorder) {
        self.queue.set_recorder(rec.clone());
        for sim in &mut self.sims {
            sim.set_recorder(rec.clone());
        }
    }
}

/// Executes a single run of one model under a structured-event recorder
/// and returns both the run's result and the captured [`Recording`].
///
/// The run is draw-for-draw identical to the same `(base_seed, run)` pair
/// inside a campaign: the run's RNG stream is `master.split(run)` and the
/// background-traffic stream is `rng.split(0xB6)`. With the `trace`
/// feature disabled the recorder records nothing and the returned
/// recording is empty.
pub fn record_run(
    params: &SimParams,
    leads: &LeadTimeModel,
    base_seed: u64,
    run: usize,
    capacity: usize,
) -> (RunResult, Recording) {
    let rec = Recorder::enabled(capacity);
    let mut arena = RunArena::new(params, &[params.model], leads);
    arena.install_recorder(rec.clone());
    let master = SimRng::seed_from(base_seed);
    let mut out = [None];
    arena.run_one(&master, run, &mut out);
    // run_one fills every slot. simlint: allow(no-unwrap-in-lib)
    let result = out[0].take().expect("run produced a result");
    (result, rec.take())
}

/// Claims the next chunk of item indices `[start, end)` from the shared
/// counter, or `None` when the work is exhausted.
///
/// Chunk sizing balances claim contention against tail imbalance across
/// item spaces from a lone cell's run count up to a grid's
/// `cells × models × runs`: while plenty of work remains each claim
/// takes ¼ of the remaining items per thread (capped at 64 so early
/// claims on large grids stay bounded), and once the tail is within two
/// items per thread workers drop to single-item claims — the worst-case
/// straggle behind a finished pool is then one item, not one chunk, no
/// matter how large the index space or the thread count.
fn claim_chunk(next: &AtomicUsize, total: usize, threads: usize) -> Option<(usize, usize)> {
    loop {
        let cur = next.load(Ordering::Relaxed);
        if cur >= total {
            return None;
        }
        let remaining = total - cur;
        let k = if remaining <= threads * 2 {
            1
        } else {
            (remaining / (threads * 4)).clamp(1, 64)
        };
        let k = k.min(remaining);
        match next.compare_exchange(cur, cur + k, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return Some((cur, cur + k)),
            Err(_) => continue, // lost the race; re-read and retry
        }
    }
}

/// Runs one configuration `config.runs` times and aggregates.
pub fn run_many(params: &SimParams, leads: &LeadTimeModel, config: &RunnerConfig) -> Aggregate {
    let campaign = run_models(params, &[params.model], leads, config);
    // run_models returns one aggregate per requested model. simlint: allow(no-unwrap-in-lib)
    campaign.aggregates.into_iter().next().expect("one model")
}

/// Runs several models over paired failure traces.
///
/// `base_params.model` is ignored; each entry of `models` is simulated
/// with otherwise identical parameters. Trace generation consumes the
/// run's RNG stream once, so every model sees the same failures, leads,
/// prediction outcomes and false positives.
///
/// Implemented as a one-cell [`run_grid`]; the aggregate is bit-identical
/// to the dedicated pre-grid implementation (pinned by the serial
/// fresh-build reference test below and the committed campaign digests in
/// `tests/trace_determinism.rs`).
pub fn run_models(
    base_params: &SimParams,
    models: &[ModelKind],
    leads: &LeadTimeModel,
    config: &RunnerConfig,
) -> CampaignResult {
    let cells = [GridCell::new(base_params.clone(), models)];
    // A standalone campaign is always simulated: the analytic pre-filter
    // is a grid-sweep tier, and callers of run_models (and run_many)
    // expect real aggregates unconditionally.
    let mut grid = run_grid_filtered(&cells, leads, config, None);
    // One cell in, one campaign out. simlint: allow(no-unwrap-in-lib)
    grid.cells.pop().expect("one cell")
}

/// One cell of a campaign grid: a parameter point plus the models to run
/// over its (per-run shared) failure traces.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Display label (defaults to the application name).
    pub label: String,
    /// Simulation parameters (`params.model` is ignored; `models` decides
    /// what runs).
    pub params: SimParams,
    /// The models simulated over this cell's traces, in output order.
    pub models: Vec<ModelKind>,
}

impl GridCell {
    /// A cell labelled with its application name.
    pub fn new(params: SimParams, models: &[ModelKind]) -> Self {
        assert!(!models.is_empty(), "at least one model per cell");
        Self {
            label: params.app.name.to_string(),
            params,
            models: models.to_vec(),
        }
    }

    /// Replaces the display label (sweep bins label cells by sweep value).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// May `b`'s lane reuse `a`'s simulation results verbatim, assuming both
/// run a prediction-blind model over the same trace group?
///
/// Within one trace group the failure *stream* is identical across cells
/// (times, nodes, sequence ids, predicted flags, false-positive count —
/// only the lead-time values differ) and so is the post-generation RNG
/// state feeding the background-traffic stream. A prediction-blind model
/// (`!uses_prediction()`) schedules no prediction events and never reads
/// a lead or estimate, so its runs depend only on that invariant stream
/// plus the non-lead parameters — if those are equal too, every run
/// produces bit-identical results and one execution can serve both
/// lanes. The comparison is bit-exact (`SimParams` float fields are
/// positivity-asserted, so derived float equality has no `-0.0` hazard).
fn lead_blind_mates(a: &SimParams, b: &SimParams) -> bool {
    let mut a = a.clone();
    let mut b = b.clone();
    a.lead_scale = 1.0;
    b.lead_scale = 1.0;
    a.model = b.model;
    a == b
}

/// How one trace group generates its per-run traces.
struct GroupInfo {
    /// Scale-invariant config — the group key, and the generation config
    /// for multi-view groups.
    core_key: TraceConfig,
    /// Predictor shared by every cell in the group (prediction draws are
    /// part of trace generation, so it participates in the key).
    predictor: Predictor,
    /// Do member cells need more than one lead-scale view? Single-view
    /// groups generate the finished trace directly (the exact pre-grid
    /// hot path); multi-view groups generate a [`TraceCore`] once and
    /// instantiate per-cell views from it.
    multi_view: bool,
    /// The full config of a single-view group's one view.
    solo_cfg: TraceConfig,
}

/// One execution unit: a representative `(cell, model)` lane plus any
/// deduplicated member lanes that receive copies of its results.
struct Unit {
    group: usize,
    cell: usize,
    model_idx: usize,
    /// Member lanes, representative first; every lane gets a bit-identical
    /// copy of the unit's per-run result.
    lanes: Vec<usize>,
}

/// The static execution plan of a grid: lanes, trace groups, and
/// deduplicated execution units.
///
/// Public so the allocation-regression test and the benchmarks can drive
/// a [`GridWorker`] directly; campaign code should call [`run_grid`].
pub struct GridPlan<'a> {
    cells: &'a [GridCell],
    leads: &'a LeadTimeModel,
    cell_tcfg: Vec<TraceConfig>,
    groups: Vec<GroupInfo>,
    units: Vec<Unit>,
    lane_base: Vec<usize>,
    cell_group: Vec<usize>,
    n_lanes: usize,
}

impl<'a> GridPlan<'a> {
    /// Plans `cells`: assigns lanes, groups cells by scale-invariant
    /// trace config + predictor, and collapses provably identical
    /// prediction-blind lanes into shared execution units.
    pub fn new(cells: &'a [GridCell], leads: &'a LeadTimeModel) -> Self {
        assert!(!cells.is_empty(), "at least one cell required");
        let mut lane_base = Vec::with_capacity(cells.len());
        let mut n_lanes = 0usize;
        for cell in cells {
            assert!(!cell.models.is_empty(), "at least one model per cell");
            lane_base.push(n_lanes);
            n_lanes += cell.models.len();
        }
        let cell_tcfg: Vec<TraceConfig> =
            cells.iter().map(|c| trace_config(&c.params)).collect();

        let mut groups: Vec<GroupInfo> = Vec::new();
        let mut cell_group = Vec::with_capacity(cells.len());
        for (c, cell) in cells.iter().enumerate() {
            let key = cell_tcfg[c].scale_invariant();
            let gid = groups
                .iter()
                .position(|g| g.core_key == key && g.predictor == cell.params.predictor);
            let gid = match gid {
                Some(gid) => {
                    if groups[gid].solo_cfg != cell_tcfg[c] {
                        groups[gid].multi_view = true;
                    }
                    gid
                }
                None => {
                    groups.push(GroupInfo {
                        core_key: key,
                        predictor: cell.params.predictor,
                        multi_view: false,
                        solo_cfg: cell_tcfg[c],
                    });
                    groups.len() - 1
                }
            };
            cell_group.push(gid);
        }

        // Units: one per lane, except prediction-blind lanes that are
        // provably identical to an earlier lane (see lead_blind_mates).
        let mut units: Vec<Unit> = Vec::new();
        for (c, cell) in cells.iter().enumerate() {
            for (m, &model) in cell.models.iter().enumerate() {
                let lane = lane_base[c] + m;
                let donor = if model.uses_prediction() {
                    None
                } else {
                    units.iter().position(|u| {
                        u.group == cell_group[c]
                            && cells[u.cell].models[u.model_idx] == model
                            && lead_blind_mates(&cells[u.cell].params, &cell.params)
                    })
                };
                match donor {
                    Some(u) => units[u].lanes.push(lane),
                    None => units.push(Unit {
                        group: cell_group[c],
                        cell: c,
                        model_idx: m,
                        lanes: vec![lane],
                    }),
                }
            }
        }
        // Group-sort units so a worker sweeping one run's units visits
        // each trace group contiguously (stable: preserves cell order
        // within a group, keeping same-view lanes adjacent). Unit order
        // only affects scheduling — results fold by lane, not by unit.
        units.sort_by_key(|u| u.group);

        Self {
            cells,
            leads,
            cell_tcfg,
            groups,
            units,
            lane_base,
            cell_group,
            n_lanes,
        }
    }

    pub(crate) fn lane(&self, cell: usize, model_idx: usize) -> usize {
        self.lane_base[cell] + model_idx
    }

    /// The trace group of cell `cell` (shard planning keeps each group's
    /// cells on one shard so cross-cell trace sharing survives the split).
    pub(crate) fn cell_group(&self, cell: usize) -> usize {
        self.cell_group[cell]
    }

    /// Execution units per run (≤ [`lanes`](Self::lanes); smaller when
    /// prediction-blind lanes deduplicate).
    pub fn units(&self) -> usize {
        self.units.len()
    }

    /// `(cell, model)` lanes in the grid.
    pub fn lanes(&self) -> usize {
        self.n_lanes
    }

    /// Distinct trace groups (cells sharing per-run failure traces).
    pub fn trace_groups(&self) -> usize {
        self.groups.len()
    }
}

/// Sentinel: no lead-scale view instantiated in the slot's trace buffer.
/// Never collides with a real `lead_scale` (asserted positive, so its
/// bit pattern is never all-ones).
const STALE_VIEW: u64 = u64::MAX;

/// Per-group trace cache of one worker.
struct TraceSlot {
    /// Which run the slot currently holds, if any.
    run: Option<usize>,
    /// Scale-invariant capture (multi-view groups only).
    core: TraceCore,
    /// The instantiated (or directly generated) trace buffer.
    trace: FailureTrace,
    /// `lead_scale.to_bits()` of the view in `trace` ([`STALE_VIEW`] when
    /// the buffer does not match `core`'s current run).
    view_bits: u64,
    /// RNG state right after trace generation; the background-traffic
    /// stream is `post_rng.split(0xB6)`, exactly as in a standalone
    /// campaign.
    post_rng: SimRng,
}

/// One worker's mutable state: lazily built per-lane simulators, a
/// shared event queue, and one trace cache slot per group.
///
/// Public so the allocation-regression test and the benchmarks can
/// exercise the warm path directly; campaign code should call
/// [`run_grid`].
pub struct GridWorker<'a, 'p> {
    plan: &'p GridPlan<'a>,
    vr: VrConfig,
    sims: Vec<Option<CrSim>>,
    queue: EventQueue<Ev>,
    slots: Vec<TraceSlot>,
    /// Trace generations this worker performed (one per `(group, run)`
    /// cache miss).
    pub trace_generations: u64,
    /// Unit executions that reused this worker's cached per-run trace.
    pub trace_reuses: u64,
}

impl<'a, 'p> GridWorker<'a, 'p> {
    /// A fresh worker over `plan` (simulators build lazily on first use)
    /// with no variance reduction.
    pub fn new(plan: &'p GridPlan<'a>) -> Self {
        Self::with_vr(plan, VrConfig::default())
    }

    /// A fresh worker whose per-run RNG streams are derived under `vr`
    /// (the default config is bit-identical to [`GridWorker::new`]).
    pub fn with_vr(plan: &'p GridPlan<'a>, vr: VrConfig) -> Self {
        Self {
            plan,
            vr,
            sims: (0..plan.n_lanes).map(|_| None).collect(),
            queue: EventQueue::new(),
            slots: plan
                .groups
                .iter()
                .map(|_| TraceSlot {
                    run: None,
                    core: TraceCore::default(),
                    trace: FailureTrace::default(),
                    view_bits: STALE_VIEW,
                    post_rng: SimRng::seed_from(0),
                })
                .collect(),
            trace_generations: 0,
            trace_reuses: 0,
        }
    }

    /// Executes `unit` for `run` and returns the run's result (the
    /// caller copies it into every member lane's slot). Deterministic in
    /// `(master, run, unit)` and the worker's [`VrConfig`] alone —
    /// worker-local caches never change results, only whether work is
    /// redone. Stratified runs use the static round-robin stratum; the
    /// adaptive pool supplies its own schedule via
    /// [`run_unit_stratum`](Self::run_unit_stratum).
    pub fn run_unit(&mut self, master: &SimRng, run: usize, unit: usize) -> RunResult {
        let stratum = fixed_stratum(run, &self.vr);
        self.run_unit_stratum(master, run, unit, stratum)
    }

    /// [`run_unit`](Self::run_unit) with an explicit stratum for the
    /// run's first-failure-time draw (ignored unless the worker's config
    /// stratifies). All units of one run must be executed with the same
    /// stratum — the per-run trace cache is keyed by `run` alone.
    pub fn run_unit_stratum(
        &mut self,
        master: &SimRng,
        run: usize,
        unit: usize,
        stratum: u32,
    ) -> RunResult {
        let u = &self.plan.units[unit];
        let lane = self.plan.lane(u.cell, u.model_idx);
        if self.sims[lane].is_none() {
            let cell = &self.plan.cells[u.cell];
            let mut p = cell.params.clone();
            p.model = cell.models[u.model_idx];
            self.sims[lane] = Some(CrSim::new(p, FailureTrace::default(), self.plan.leads));
        }
        self.run_unit_warm(master, run, unit, stratum)
    }

    /// The grid steady state: once each lane's simulator exists and the
    /// per-group trace buffers have grown, this performs no heap
    /// allocation (enforced by `crates/core/tests/alloc_free.rs`).
    // simlint: hot
    fn run_unit_warm(&mut self, master: &SimRng, run: usize, unit: usize, stratum: u32) -> RunResult {
        let u = &self.plan.units[unit];
        let group = &self.plan.groups[u.group];
        let slot = &mut self.slots[u.group];
        if slot.run != Some(run) {
            // Cache miss: consume the run's RNG stream exactly as a
            // standalone campaign would — trace draws first, then the
            // background stream splits off the post-generation state.
            // Under the default VrConfig this is exactly master.split(run).
            let mut rng = vr_run_rng(master, run, &self.vr, stratum);
            if group.multi_view {
                slot.core
                    .generate_into(&group.core_key, self.plan.leads, &group.predictor, &mut rng);
                slot.view_bits = STALE_VIEW;
            } else {
                slot.trace
                    .generate_into(&group.solo_cfg, self.plan.leads, &group.predictor, &mut rng);
            }
            slot.post_rng = rng;
            slot.run = Some(run);
            self.trace_generations += 1;
        } else {
            self.trace_reuses += 1;
        }
        if group.multi_view {
            let cfg = &self.plan.cell_tcfg[u.cell];
            let bits = cfg.lead_scale.to_bits();
            if slot.view_bits != bits {
                slot.core.instantiate_into(cfg, &group.predictor, &mut slot.trace);
                slot.view_bits = bits;
            }
        }
        let bg_rng = slot.post_rng.split(0xB6);
        let lane = self.plan.lane(u.cell, u.model_idx);
        let slot = &self.slots[u.group];
        // run_unit builds the lane's simulator before delegating here.
        // simlint: allow(no-unwrap-in-lib)
        let sim = self.sims[lane].as_mut().expect("lane simulator built");
        execute_sim(sim, &mut self.queue, &slot.trace, bg_rng)
    }
}

/// Preallocated per-`(lane, run)` result storage with lock-free disjoint
/// writes.
//
// simlint: invariant(slab-claim-partition): the chunk-claim counter hands
// every (run, unit) item to exactly one worker, and a unit's member lanes
// belong to that unit alone, so each (lane, run) slot has exactly one
// writer, which writes it exactly once.
// simlint: invariant(slab-scope-join): slots are read only after
// thread::scope has joined every worker, so no read races a write.
// (Both are model-checked by crates/schedcheck against the claim/put/fold
// operation model.)
struct ResultSlab {
    slots: Vec<UnsafeCell<Option<RunResult>>>,
}

// SAFETY(slab-claim-partition, slab-scope-join): disjoint single writes
// per slot plus join-ordered reads make cross-thread sharing of the
// UnsafeCell slots sound.
unsafe impl Sync for ResultSlab {}

impl ResultSlab {
    fn new(n: usize) -> Self {
        Self {
            slots: (0..n).map(|_| UnsafeCell::new(None)).collect(),
        }
    }

    /// # Safety
    ///
    /// The caller must be the unique writer of `idx` for the lifetime of
    /// the slab's sharing (guaranteed by the claim-counter partition).
    unsafe fn put(&self, idx: usize, v: RunResult) {
        *self.slots[idx].get() = Some(v);
    }

    fn into_results(self) -> Vec<Option<RunResult>> {
        self.slots.into_iter().map(|c| c.into_inner()).collect()
    }
}

/// Per-sweep shard/merge accounting, populated by
/// [`run_grid_sharded`](crate::shard::run_grid_sharded) (`None` for
/// in-process sweeps; `meta_json` then reports one shard and zero
/// re-executions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardMeta {
    /// Shards the planner actually produced (≤ the requested count; 1
    /// when the coordinator fell back in-process).
    pub shards: usize,
    /// Shard re-executions the coordinator performed after child
    /// failures (non-zero exit, bad frame, timeout).
    pub reexecutions: usize,
    /// Total bytes of validated result frames folded into the merge.
    pub frame_bytes: u64,
}

/// Results and execution metadata of one [`run_grid`] sweep.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// One campaign result per input cell, in input order.
    pub cells: Vec<CampaignResult>,
    /// Cell display labels, index-aligned with `cells`.
    pub labels: Vec<String>,
    /// Monte-Carlo runs per cell (the maximum of `cell_runs` in adaptive
    /// mode, where cells stop individually).
    pub runs_per_cell: usize,
    /// Runs actually executed per input cell (all equal to
    /// `runs_per_cell` in fixed mode; 0 for analytically pruned cells).
    pub cell_runs: Vec<usize>,
    /// Attained relative CI half-width per input cell: the worst (max)
    /// over the cell's model lanes of `ci_half_width(0.95) / |mean|` on
    /// the primary metric (total overhead hours), under the estimator
    /// the sweep actually used (paired / stratified / plain). 0 for
    /// pruned or degenerate cells.
    pub cell_ci_rel: Vec<f64>,
    /// Worker threads the sweep actually ran on.
    pub threads: usize,
    /// Distinct trace groups (cells sharing per-run failure traces).
    pub trace_groups: usize,
    /// `(cell, model)` lanes in the grid.
    pub lanes: usize,
    /// Execution units per run after prediction-blind deduplication.
    pub units: usize,
    /// Trace generations actually performed across all workers. Depends
    /// on work-stealing interleaving (each worker caches privately), so
    /// it is reported for observability but excluded from digests.
    pub trace_generations: u64,
    /// Unit executions that hit a worker's per-run trace cache.
    pub trace_reuses: u64,
    /// Digest of the shared lead-time model (see
    /// [`LeadTimeModel::digest`]).
    pub leads_digest: u64,
    /// The analytic pre-filter's verdict per input cell (index-aligned
    /// with `cells`): `Some` → the cell was answered analytically and
    /// never simulated; `None` → the cell was simulated. All `None`
    /// when no pre-filter was active.
    pub analytic_verdicts: Vec<Option<AnalyticVerdict>>,
    /// Cells answered by the analytic tier instead of simulation.
    pub cells_pruned: usize,
    /// Shard/merge accounting when the sweep ran through the
    /// process-sharding coordinator (`None` for in-process sweeps).
    pub shard_meta: Option<ShardMeta>,
}

impl GridResult {
    /// The `i`-th cell's campaign result (input order).
    pub fn cell(&self, i: usize) -> &CampaignResult {
        &self.cells[i]
    }

    /// The first cell labelled `label`, if any.
    pub fn by_label(&self, label: &str) -> Option<&CampaignResult> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| &self.cells[i])
    }

    /// Cells that went through the simulation pool (input cells minus
    /// pre-filter prunes).
    pub fn cells_simulated(&self) -> usize {
        self.cells.len() - self.cells_pruned
    }

    /// Fraction of unit executions served from a worker's trace cache.
    pub fn trace_cache_hit_rate(&self) -> f64 {
        let total = self.trace_generations + self.trace_reuses;
        if total == 0 {
            0.0
        } else {
            self.trace_reuses as f64 / total as f64
        }
    }

    /// All cells' per-model observability aggregates merged into one
    /// grid-wide rollup.
    pub fn obs_merged(&self) -> ObsAggregate {
        ObsAggregate::merge_all(
            self.cells
                .iter()
                .flat_map(|c| c.aggregates.iter().map(|a| &a.obs)),
        )
    }

    /// Total runs executed across all cells (in adaptive mode, usually
    /// far below `cells × runs_per_cell`).
    pub fn total_runs(&self) -> usize {
        self.cell_runs.iter().sum()
    }

    /// Worst attained relative CI half-width across simulated cells.
    pub fn worst_ci_rel(&self) -> f64 {
        self.cell_ci_rel.iter().cloned().fold(0.0, f64::max)
    }

    /// Per-cell run-allocation records (label, runs executed, attained
    /// relative CI) for the observability layer — see
    /// [`pckpt_simobs::allocation_json`].
    pub fn allocations(&self) -> Vec<pckpt_simobs::CellAllocation> {
        self.labels
            .iter()
            .zip(&self.cell_runs)
            .zip(&self.cell_ci_rel)
            .map(|((label, &runs), &ci_rel)| pckpt_simobs::CellAllocation {
                label: label.clone(),
                runs,
                ci_rel,
            })
            .collect()
    }

    /// Campaign-style execution metadata as a JSON object (the grid
    /// counterpart of the `METRICS_JSON` payload: cell/lane/unit counts,
    /// thread count, trace-sharing accounting, and the run-allocation
    /// summary).
    pub fn meta_json(&self, name: &str) -> String {
        let runs_min = self
            .cell_runs
            .iter()
            .zip(&self.analytic_verdicts)
            .filter(|(_, v)| v.is_none())
            .map(|(&r, _)| r)
            .min()
            .unwrap_or(0);
        format!(
            "{{\"name\":\"{name}\",\"cells\":{},\"lanes\":{},\"units\":{},\"runs_per_cell\":{},\
             \"threads\":{},\"trace_groups\":{},\"trace_generations\":{},\"trace_reuses\":{},\
             \"trace_cache_hit_rate\":{:.4},\"leads_digest\":\"{:016x}\",\
             \"prefilter_pruned\":{},\"prefilter_simulated\":{},\
             \"total_runs\":{},\"runs_min\":{},\"worst_ci_rel\":{:.6},\
             \"shards\":{},\"reexecutions\":{},\"frame_bytes\":{}}}",
            self.cells.len(),
            self.lanes,
            self.units,
            self.runs_per_cell,
            self.threads,
            self.trace_groups,
            self.trace_generations,
            self.trace_reuses,
            self.trace_cache_hit_rate(),
            self.leads_digest,
            self.cells_pruned,
            self.cells_simulated(),
            self.total_runs(),
            runs_min,
            self.worst_ci_rel(),
            self.shard_meta.map_or(1, |s| s.shards),
            self.shard_meta.map_or(0, |s| s.reexecutions),
            self.shard_meta.map_or(0, |s| s.frame_bytes),
        )
    }
}

/// Runs an entire sweep — every cell × model × run — through one
/// work-stealing pool with cross-cell trace sharing and prediction-blind
/// deduplication.
///
/// Every cell's aggregate is **bit-identical** to a standalone
/// [`run_models`] call with the same `(params, models, leads, config)`
/// (pinned by the grid-equivalence proptest and the golden digests in
/// `tests/trace_determinism.rs`): sharing only ever skips *provably
/// redundant* work — regenerating an identical trace, re-running an
/// identical simulation — never changes what is computed.
///
/// With `PCKPT_PREFILTER=analytic[:margin]` set, crossover cells the
/// analytic tier decides confidently are answered from Eqs. (4)–(8) and
/// never simulated — see [`run_grid_filtered`] and
/// [`Prefilter`](crate::prefilter::Prefilter). The surviving cells'
/// aggregates stay bit-identical to an unfiltered sweep.
pub fn run_grid(cells: &[GridCell], leads: &LeadTimeModel, config: &RunnerConfig) -> GridResult {
    run_grid_filtered(cells, leads, config, Prefilter::from_env().as_ref())
}

/// [`run_grid`] with an explicit analytic pre-filter (`None` = simulate
/// every cell; this is what [`run_models`] always uses, so standalone
/// campaigns are never pruned).
///
/// Pruned cells keep their slot in the result (input order, labels,
/// model lists) but carry an empty aggregate vector and a `Some`
/// [`AnalyticVerdict`]; plan statistics (`lanes`, `units`,
/// `trace_groups`) cover the *simulated* cells only.
///
/// Pruning is sound because the grid equivalence contract above is
/// per-cell: a surviving cell's aggregate does not depend on which other
/// cells share the pool, so answering some cells analytically cannot
/// change a simulated cell's bits (pinned by the prefilter digest oracle
/// in `tests/grid_equivalence.rs`).
pub fn run_grid_filtered(
    cells: &[GridCell],
    leads: &LeadTimeModel,
    config: &RunnerConfig,
    prefilter: Option<&Prefilter>,
) -> GridResult {
    let verdicts: Vec<Option<AnalyticVerdict>> = match prefilter {
        Some(pf) => cells.iter().map(|c| pf.cell_verdict(c, leads)).collect(),
        None => vec![None; cells.len()],
    };
    let pruned = verdicts.iter().filter(|v| v.is_some()).count();
    if pruned == 0 {
        let mut grid = run_grid_simulated(cells, leads, config);
        grid.analytic_verdicts = verdicts;
        return grid;
    }

    let survivors: Vec<GridCell> = cells
        .iter()
        .zip(&verdicts)
        .filter(|(_, v)| v.is_none())
        .map(|(c, _)| c.clone())
        .collect();
    let simulated = if survivors.is_empty() {
        None
    } else {
        Some(run_grid_simulated(&survivors, leads, config))
    };
    splice_pruned(cells, leads, config, verdicts, simulated)
}

/// Splices a simulated survivor-grid result back into the full input
/// cell order: pruned cells get an empty campaign (their answer lives in
/// `analytic_verdicts`), zero runs, and a zero CI. The shard coordinator
/// and the campaign service reuse this so a sharded or cache-served
/// prefiltered sweep splices exactly like an in-process one.
pub fn splice_pruned(
    cells: &[GridCell],
    leads: &LeadTimeModel,
    config: &RunnerConfig,
    verdicts: Vec<Option<AnalyticVerdict>>,
    simulated: Option<GridResult>,
) -> GridResult {
    let pruned = verdicts.iter().filter(|v| v.is_some()).count();
    let threads = simulated
        .as_ref()
        .map(|g| g.threads)
        .unwrap_or_else(|| config.effective_threads_for(0));

    // Splice simulated campaigns back into input order; pruned cells get
    // an empty campaign (their answer lives in `analytic_verdicts`).
    let mut sim_cells = simulated
        .as_ref()
        .map(|g| g.cells.iter().cloned())
        .into_iter()
        .flatten();
    let results: Vec<CampaignResult> = cells
        .iter()
        .zip(&verdicts)
        .map(|(cell, verdict)| {
            if verdict.is_some() {
                CampaignResult {
                    models: cell.models.clone(),
                    aggregates: Vec::new(),
                    threads,
                }
            } else {
                // One simulated campaign per surviving cell, in order.
                // simlint: allow(no-unwrap-in-lib)
                sim_cells.next().expect("one campaign per surviving cell")
            }
        })
        .collect();

    // Per-cell run counts and attained CIs splice like the campaigns:
    // pruned cells executed nothing and report a zero CI.
    let mut sim_runs = simulated
        .as_ref()
        .map(|g| g.cell_runs.iter().copied().zip(g.cell_ci_rel.iter().copied()))
        .into_iter()
        .flatten();
    let mut cell_runs = Vec::with_capacity(cells.len());
    let mut cell_ci_rel = Vec::with_capacity(cells.len());
    for verdict in &verdicts {
        let (r, ci) = if verdict.is_some() {
            (0, 0.0)
        } else {
            // One simulated cell per surviving cell, in order.
            // simlint: allow(no-unwrap-in-lib)
            sim_runs.next().expect("one run count per surviving cell")
        };
        cell_runs.push(r);
        cell_ci_rel.push(ci);
    }

    GridResult {
        cells: results,
        labels: cells.iter().map(|c| c.label.clone()).collect(),
        runs_per_cell: simulated.as_ref().map_or(config.runs, |g| g.runs_per_cell),
        cell_runs,
        cell_ci_rel,
        threads,
        trace_groups: simulated.as_ref().map_or(0, |g| g.trace_groups),
        lanes: simulated.as_ref().map_or(0, |g| g.lanes),
        units: simulated.as_ref().map_or(0, |g| g.units),
        trace_generations: simulated.as_ref().map_or(0, |g| g.trace_generations),
        trace_reuses: simulated.as_ref().map_or(0, |g| g.trace_reuses),
        leads_digest: leads.digest(),
        analytic_verdicts: verdicts,
        cells_pruned: pruned,
        shard_meta: simulated.as_ref().and_then(|g| g.shard_meta),
    }
}

/// Folds one cell's raw lane-major per-run results in the canonical
/// single-process order — per model lane, ascending run — returning the
/// cell's campaign result and attained relative CI (worst lane).
///
/// This is the exact fold [`run_grid`] performs and the exact fold the
/// shard coordinator replays over frames, so feeding it a cell's
/// decoded frame reproduces the in-process aggregate bit for bit — the
/// service cache's equivalence argument. `results[m * config.runs + r]`
/// must hold lane `m`'s run `r` (the [`CellResults`] iteration order).
/// Fixed run counts only; adaptive campaigns are never frame-addressed
/// (see [`run_grid_with_cell_sink`]).
pub fn fold_cell_results(
    cell: &GridCell,
    config: &RunnerConfig,
    results: &[RunResult],
    threads: usize,
) -> (CampaignResult, f64) {
    assert_eq!(
        results.len(),
        cell.models.len() * config.runs,
        "lane-major results: one slot per (model, run)"
    );
    let mut it = results.iter();
    let folded: Result<_, std::convert::Infallible> =
        fold_cell_results_with(cell, config, threads, || {
            // simlint: allow(no-unwrap-in-lib) — assert pins results.len() to the polls made
            Ok(it.next().expect("length checked above"))
        });
    // simlint: allow(no-unwrap-in-lib) — E is Infallible; no error value can exist
    folded.expect("infallible source")
}

/// [`fold_cell_results`] over a pull source instead of a slice: the
/// source is polled `models × runs` times in the canonical lane-major
/// order, and its first error aborts the fold. This lets a caller fold
/// a serialized frame straight from its bytes — one decoded result live
/// at a time — without materializing the whole result vector.
pub fn fold_cell_results_with<R: std::borrow::Borrow<RunResult>, E>(
    cell: &GridCell,
    config: &RunnerConfig,
    threads: usize,
    mut next_result: impl FnMut() -> Result<R, E>,
) -> Result<(CampaignResult, f64), E> {
    let mut fold = CellFold::new(cell, config, threads);
    for _ in 0..cell.models.len() * config.runs {
        fold.push(next_result()?.borrow());
    }
    Ok(fold.finish())
}

/// Incremental (push) form of [`fold_cell_results`]: feed the cell's
/// results one at a time in the canonical lane-major order, then
/// [`finish`](Self::finish). Borrowing each result keeps exactly one
/// `RunResult` live however the caller produces them — a decode loop
/// can reuse one scratch value for the whole frame.
pub struct CellFold<'a> {
    cell: &'a GridCell,
    vr: VrConfig,
    runs: usize,
    threads: usize,
    aggregates: Vec<Aggregate>,
    agg: Aggregate,
    tracker: Option<CiTracker>,
    run_in_lane: usize,
    ci: f64,
}

impl<'a> CellFold<'a> {
    /// An empty fold for `cell` under `config`. Fixed run counts only.
    pub fn new(cell: &'a GridCell, config: &RunnerConfig, threads: usize) -> Self {
        assert!(config.vr.adaptive.is_none(), "fixed run counts only");
        let vr = config.vr;
        CellFold {
            cell,
            vr,
            runs: config.runs,
            threads,
            aggregates: Vec::with_capacity(cell.models.len()),
            agg: Aggregate::new(),
            tracker: vr.is_active().then(|| CiTracker::new(&vr)),
            run_in_lane: 0,
            ci: 0.0,
        }
    }

    /// Folds the next result in (lane-major order: lane `m`'s runs
    /// `0..runs`, then lane `m+1`'s). Panics past `models × runs`.
    pub fn push(&mut self, r: &RunResult) {
        assert!(
            self.aggregates.len() < self.cell.models.len(),
            "more results than models × runs"
        );
        self.agg.push(r);
        if let Some(t) = self.tracker.as_mut() {
            t.push(
                fixed_stratum(self.run_in_lane, &self.vr),
                r.ledger.total_overhead_secs() / 3600.0,
            );
        }
        self.run_in_lane += 1;
        if self.run_in_lane == self.runs {
            let lane_ci = match &self.tracker {
                Some(t) => t.rel_ci(0.95),
                None => rel_ci(&self.agg.total_hours),
            };
            self.ci = self.ci.max(lane_ci);
            self.aggregates.push(std::mem::replace(&mut self.agg, Aggregate::new()));
            self.tracker = self.vr.is_active().then(|| CiTracker::new(&self.vr));
            self.run_in_lane = 0;
        }
    }

    /// The folded campaign result and attained relative CI (worst
    /// lane). Panics unless exactly `models × runs` results were
    /// pushed.
    pub fn finish(self) -> (CampaignResult, f64) {
        assert_eq!(
            (self.aggregates.len(), self.run_in_lane),
            (self.cell.models.len(), 0),
            "fold incomplete: expected models × runs results"
        );
        (
            CampaignResult {
                models: self.cell.models.clone(),
                aggregates: self.aggregates,
                threads: self.threads,
            },
            self.ci,
        )
    }
}

/// Relative CI half-width of an aggregate's primary metric (total
/// overhead hours): `ci_half_width(0.95) / |mean|`, 0 when degenerate.
pub(crate) fn rel_ci(total_hours: &Summary) -> f64 {
    let m = total_hours.mean().abs();
    if m > 0.0 {
        total_hours.ci_half_width(0.95) / m
    } else {
        0.0
    }
}

/// One simulated cell's raw per-run results, handed to a grid sink as
/// the deterministic main-thread fold completes the cell.
///
/// `slots` is the cell's lane-major slice of the pool slab: lane `m`'s
/// run `r` sits at `m * runs + r`, the exact order the shard frame codec
/// serializes (`frames::encode_run_result` per slot) — so a sink can
/// stream the cell straight into a frame without reordering.
pub struct CellResults<'a> {
    /// Index of the cell among the simulated cells the pool ran (the
    /// caller owns any prefilter splicing back to input order).
    pub cell: usize,
    /// Runs per lane.
    pub runs: usize,
    /// Model lanes of this cell.
    pub lanes: usize,
    slots: &'a [Option<RunResult>],
}

impl CellResults<'_> {
    /// The `(lane, run)` result.
    pub fn result(&self, lane: usize, run: usize) -> &RunResult {
        self.slots[lane * self.runs + run]
            .as_ref()
            // The fold only reaches a cell once every slot is filled.
            // simlint: allow(no-unwrap-in-lib)
            .expect("every unit produced a result")
    }

    /// Lane-major, ascending-run iterator — the canonical frame order.
    pub fn iter(&self) -> impl Iterator<Item = &RunResult> {
        (0..self.lanes).flat_map(move |m| (0..self.runs).map(move |r| self.result(m, r)))
    }
}

/// A per-cell completion callback for [`run_grid_with_cell_sink`].
pub type CellSink<'a> = dyn FnMut(&CellResults<'_>) + 'a;

/// [`run_grid`] over exactly `cells` (no prefilter), invoking `sink`
/// with each cell's raw lane-major results as the main-thread fold
/// completes it — the service layer's journaling/caching hook. Sink
/// order is deterministic (ascending cell index). The returned grid is
/// bit-identical to `run_grid_filtered(cells, leads, config, None)`.
///
/// Requires a fixed run count: under adaptive allocation
/// (`config.vr.adaptive`) a cell's results depend on grid-pooled pilot
/// variances, so per-cell results are not independently addressable and
/// this function panics rather than hand a sink context-dependent data.
pub fn run_grid_with_cell_sink(
    cells: &[GridCell],
    leads: &LeadTimeModel,
    config: &RunnerConfig,
    sink: &mut CellSink<'_>,
) -> GridResult {
    assert!(
        config.vr.adaptive.is_none(),
        "per-cell sinks require a fixed run count: adaptive allocation's \
         grid-pooled feedback makes cell results depend on pool composition"
    );
    assert!(config.runs > 0, "at least one run required");
    if config.vr.is_active() {
        run_grid_vr(cells, leads, config, Some(sink))
    } else {
        run_grid_fixed(cells, leads, config, Some(sink))
    }
}

/// The simulation pool proper: every input cell is executed.
fn run_grid_simulated(
    cells: &[GridCell],
    leads: &LeadTimeModel,
    config: &RunnerConfig,
) -> GridResult {
    assert!(config.runs > 0, "at least one run required");
    if config.vr.is_active() {
        run_grid_vr(cells, leads, config, None)
    } else {
        run_grid_fixed(cells, leads, config, None)
    }
}

/// The fixed-run simulation pool (no VR batching).
fn run_grid_fixed(
    cells: &[GridCell],
    leads: &LeadTimeModel,
    config: &RunnerConfig,
    mut sink: Option<&mut CellSink<'_>>,
) -> GridResult {
    let plan = GridPlan::new(cells, leads);
    let runs = config.runs;
    let pool = run_pool_range(&plan, config, 0, runs);
    let threads = pool.threads;

    // Deterministic main-thread fold: per lane, ascending run order —
    // the exact push sequence a standalone run_models performs.
    let slots = pool.slots;
    let mut results = Vec::with_capacity(cells.len());
    for (c, cell) in cells.iter().enumerate() {
        let mut aggregates: Vec<Aggregate> =
            cell.models.iter().map(|_| Aggregate::new()).collect();
        for (m, agg) in aggregates.iter_mut().enumerate() {
            let lane = plan.lane(c, m);
            for run in 0..runs {
                let slot = slots[lane * runs + run].as_ref();
                // Every (run, unit) item is claimed exactly once. simlint: allow(no-unwrap-in-lib)
                agg.push(slot.expect("every unit produced a result"));
            }
        }
        if let Some(sink) = sink.as_mut() {
            let lane0 = plan.lane(c, 0);
            sink(&CellResults {
                cell: c,
                runs,
                lanes: cell.models.len(),
                slots: &slots[lane0 * runs..(lane0 + cell.models.len()) * runs],
            });
        }
        results.push(CampaignResult {
            models: cell.models.clone(),
            aggregates,
            threads,
        });
    }

    let cell_ci_rel = results
        .iter()
        .map(|c| {
            c.aggregates
                .iter()
                .map(|a| rel_ci(&a.total_hours))
                .fold(0.0, f64::max)
        })
        .collect();

    GridResult {
        cells: results,
        labels: cells.iter().map(|c| c.label.clone()).collect(),
        runs_per_cell: runs,
        cell_runs: vec![runs; cells.len()],
        cell_ci_rel,
        threads,
        trace_groups: plan.trace_groups(),
        lanes: plan.lanes(),
        units: plan.units(),
        trace_generations: pool.trace_generations,
        trace_reuses: pool.trace_reuses,
        leads_digest: leads.digest(),
        analytic_verdicts: vec![None; cells.len()],
        cells_pruned: 0,
        shard_meta: None,
    }
}

/// Results of one [`run_pool_range`] sweep: `lane * span + (run - r0)`
/// indexed per-run results plus the pool's execution accounting.
pub(crate) struct PoolRange {
    /// One slot per `(lane, run)` pair in the executed range.
    pub slots: Vec<Option<RunResult>>,
    /// Trace generations performed across all workers.
    pub trace_generations: u64,
    /// Unit executions served from a worker's per-run trace cache.
    pub trace_reuses: u64,
    /// Worker threads the pool actually ran on.
    pub threads: usize,
}

/// Executes every unit of `plan` for the contiguous global-run range
/// `[r0, r1)` through one work-stealing pool.
///
/// Each `(lane, run)` result is deterministic in `(config.base_seed,
/// config.vr, run, unit)` alone — worker caches and chunk interleaving
/// never reach the results — so executing a sub-range reproduces exactly
/// the slots the same runs would fill inside a full `[0, runs)` sweep.
/// That sub-range exactness is what makes process-sharding bit-identical
/// (see `crate::shard`). Workers derive per-run RNG streams under
/// `config.vr` with the static stratum schedule; adaptive allocation
/// (which needs sequential feedback) must use [`run_grid`]'s VR pool
/// instead.
pub(crate) fn run_pool_range(
    plan: &GridPlan,
    config: &RunnerConfig,
    r0: usize,
    r1: usize,
) -> PoolRange {
    assert!(r0 < r1, "non-empty run range required");
    let span = r1 - r0;
    let n_units = plan.units.len();
    let total = span * n_units;
    let threads = config.effective_threads_for(total);
    let master = SimRng::seed_from(config.base_seed);
    let vr = config.vr;

    let slab = ResultSlab::new(plan.n_lanes * span);
    let next = AtomicUsize::new(0);
    let generations = AtomicU64::new(0);
    let reuses = AtomicU64::new(0);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let master = master.clone();
            let slab = &slab;
            let next = &next;
            let generations = &generations;
            let reuses = &reuses;
            let handle = scope.spawn(move || {
                let mut worker = GridWorker::with_vr(plan, vr);
                while let Some((start, end)) = claim_chunk(next, total, threads) {
                    for item in start..end {
                        // Run-major: consecutive items sweep one run's
                        // units (group-sorted), maximizing cache hits.
                        let (off, unit) = (item / n_units, item % n_units);
                        let result = worker.run_unit(&master, r0 + off, unit);
                        let lanes = &plan.units[unit].lanes;
                        for &lane in &lanes[1..] {
                            // SAFETY(slab-claim-partition): this worker
                            // owns item (run, unit), and with it every
                            // member lane's (lane, run) slot.
                            unsafe { slab.put(lane * span + off, result.clone()) };
                        }
                        // SAFETY(slab-claim-partition): as above.
                        unsafe { slab.put(lanes[0] * span + off, result) };
                    }
                }
                generations.fetch_add(worker.trace_generations, Ordering::Relaxed);
                reuses.fetch_add(worker.trace_reuses, Ordering::Relaxed);
            });
            handles.push(handle);
        }
        for handle in handles {
            // A worker panic is already fatal; re-raise it here. simlint: allow(no-unwrap-in-lib)
            handle.join().expect("worker panicked");
        }
    });

    PoolRange {
        slots: slab.into_results(),
        trace_generations: generations.into_inner(),
        trace_reuses: reuses.into_inner(),
        threads,
    }
}

/// One lane's running CI estimator under the active VR mode.
///
/// The variance basis must match the estimator: under antithetic pairing
/// the per-run values are negatively correlated, so the CI comes from the
/// variance over *pair means*; under stratification from the
/// stratum-weighted fold. Using the crude per-run variance in those modes
/// would overstate (antithetic) or understate (stratified) the CI and
/// corrupt the stopping rule.
pub(crate) enum CiTracker {
    /// Crude per-run variance (no VR).
    Plain(Summary),
    /// Variance over antithetic pair means.
    Paired(PairedSummary),
    /// Stratum-weighted fold over equal-probability strata.
    Strat(StratifiedSummary),
    /// Antithetic pairs within equal-probability strata: one paired
    /// summary per stratum, folded with weights `1/K`.
    StratPaired(Vec<PairedSummary>),
}

impl CiTracker {
    pub(crate) fn new(vr: &VrConfig) -> Self {
        match (vr.antithetic, vr.strata) {
            (false, 0) => Self::Plain(Summary::new()),
            (true, 0) => Self::Paired(PairedSummary::new()),
            (false, k) => Self::Strat(StratifiedSummary::equal_weights(k as usize)),
            (true, k) => Self::StratPaired(vec![PairedSummary::new(); k as usize]),
        }
    }

    /// Adds one per-run observation. Callers push in ascending run order
    /// (the fold order), which is what makes consecutive pushes of one
    /// stratum form antithetic pairs.
    pub(crate) fn push(&mut self, stratum: u32, x: f64) {
        match self {
            Self::Plain(s) => s.push(x),
            Self::Paired(p) => p.push(x),
            Self::Strat(s) => s.push(stratum as usize, x),
            Self::StratPaired(v) => v[stratum as usize].push(x),
        }
    }

    fn mean(&self) -> f64 {
        match self {
            Self::Plain(s) => s.mean(),
            Self::Paired(p) => p.mean(),
            Self::Strat(s) => s.mean(),
            Self::StratPaired(v) => {
                if v.iter().any(|p| p.pairs() == 0) {
                    return 0.0;
                }
                v.iter().map(PairedSummary::mean).sum::<f64>() / v.len() as f64
            }
        }
    }

    /// CI half-width of the mean, or `None` while the estimator lacks
    /// the observations to state one (e.g. a stratum with fewer than two
    /// pairs).
    fn half_width(&self, confidence: f64) -> Option<f64> {
        match self {
            Self::Plain(s) => (s.count() >= 2).then(|| s.ci_half_width(confidence)),
            Self::Paired(p) => (p.pairs() >= 2).then(|| p.ci_half_width(confidence)),
            Self::Strat(s) => {
                let ready = (0..s.strata()).all(|j| s.stratum(j).count() >= 2);
                ready.then(|| s.ci_half_width(confidence))
            }
            Self::StratPaired(v) => {
                if v.iter().any(|p| p.pairs() < 2) {
                    return None;
                }
                let w = 1.0 / v.len() as f64;
                let var: f64 = v.iter().map(|p| w * w * p.std_err() * p.std_err()).sum();
                let df: u64 = v.iter().map(|p| p.pairs() - 1).sum();
                Some(t_critical(df, confidence) * var.sqrt())
            }
        }
    }

    /// Relative CI half-width (`half_width / |mean|`), 0 when not yet
    /// statable or degenerate.
    pub(crate) fn rel_ci(&self, confidence: f64) -> f64 {
        let m = self.mean().abs();
        match self.half_width(confidence) {
            Some(hw) if m > 0.0 => hw / m,
            _ => 0.0,
        }
    }

    /// Has this lane's CI cleared the relative target?
    fn converged(&self, rel_target: f64, confidence: f64) -> bool {
        let m = self.mean().abs();
        match self.half_width(confidence) {
            Some(hw) => m > 0.0 && hw <= rel_target * m,
            None => false,
        }
    }
}

/// The stratum of each run in the batch `[start, start + n_batch)`,
/// decided deterministically before the batch is scheduled.
///
/// Until `pooled` has a variance estimate in every stratum the schedule
/// is the static round-robin (a self-bootstrapping pilot); afterwards
/// each batch's sample slots follow the Neyman allocation of the pooled
/// per-stratum spreads. Antithetic pairs always occupy consecutive
/// (even, odd) offsets with equal strata: batches are pair-aligned and
/// every allocation block is a multiple of the pair width.
fn batch_schedule(
    start: usize,
    n_batch: usize,
    vr: &VrConfig,
    pooled: Option<&StratifiedSummary>,
) -> Vec<u32> {
    if vr.strata == 0 {
        return vec![0; n_batch];
    }
    let pair_w = if vr.antithetic { 2 } else { 1 };
    let neyman = pooled.filter(|p| (0..p.strata()).all(|j| p.stratum(j).count() >= 2));
    match neyman {
        Some(p) => {
            let alloc = p.neyman_allocation(n_batch / pair_w);
            let mut sched = Vec::with_capacity(n_batch);
            for (j, &n) in alloc.iter().enumerate() {
                sched.extend(std::iter::repeat(j as u32).take(n * pair_w));
            }
            // A final truncated batch may leave a remainder slot; pin it
            // to stratum 0 (deterministic, and weights stay exact because
            // the fold is by stratum, not by position).
            sched.resize(n_batch, 0);
            sched
        }
        None => (0..n_batch).map(|i| fixed_stratum(start + i, vr)).collect(),
    }
}

/// The variance-reduced simulation pool: the same claim/slab/fold
/// skeleton as [`run_grid_simulated`], executed in sequential batches.
///
/// **Determinism.** Within a batch, every `(run, unit)` item is
/// deterministic in `(master, run, unit, stratum)` alone, and the batch's
/// stratum schedule is fixed before any worker starts. Between batches,
/// all feedback — per-cell stopping, the Neyman schedule — is computed
/// from the main-thread fold, which consumes the slab in (cell, model,
/// run) order regardless of which worker produced each slot. Scheduling
/// races therefore cannot reach any statistic that decides what runs
/// next, and the whole procedure — including the adaptive per-cell run
/// counts — is bit-identical for a given `(seed, config)` across any
/// thread count (pinned by the VR determinism tests and the adaptive
/// golden digest in `tests/trace_determinism.rs`).
///
/// A stopped cell's lanes stop folding; its execution units keep running
/// only while a still-active cell shares them (unit activity is the OR
/// of its member lanes' cells).
fn run_grid_vr(
    cells: &[GridCell],
    leads: &LeadTimeModel,
    config: &RunnerConfig,
    mut sink: Option<&mut CellSink<'_>>,
) -> GridResult {
    // Sinks are only sound when the whole sweep is one batch (see
    // run_grid_with_cell_sink); adaptive mode re-batches.
    debug_assert!(sink.is_none() || config.vr.adaptive.is_none());
    let vr = config.vr;
    let plan = GridPlan::new(cells, leads);
    let n_units = plan.units.len();
    let n_cells = cells.len();
    // Pair-align the batch geometry so antithetic pairs never straddle a
    // batch boundary. Fixed-count VR is a single batch of `config.runs`.
    let align = |n: usize| -> usize {
        if vr.antithetic {
            (n.max(1) + 1) & !1
        } else {
            n.max(1)
        }
    };
    let (batch, max_runs, confidence) = match vr.adaptive {
        Some(a) => {
            let batch = align(a.batch);
            (batch, align(a.max_runs).max(batch), a.confidence)
        }
        None => (config.runs, config.runs, 0.95),
    };

    let threads = config.effective_threads_for(batch.min(max_runs) * n_units);
    let master = SimRng::seed_from(config.base_seed);

    // lane → cell lookup for unit-activity checks.
    let mut lane_cell = vec![0usize; plan.n_lanes];
    for (c, cell) in cells.iter().enumerate() {
        for m in 0..cell.models.len() {
            lane_cell[plan.lane(c, m)] = c;
        }
    }

    let mut cell_active = vec![true; n_cells];
    let mut cell_runs = vec![0usize; n_cells];
    let mut aggs: Vec<Aggregate> = (0..plan.n_lanes).map(|_| Aggregate::new()).collect();
    let mut trackers: Vec<CiTracker> = (0..plan.n_lanes).map(|_| CiTracker::new(&vr)).collect();
    // Pooled per-stratum spread of the primary metric across every lane,
    // driving the next batch's Neyman schedule. Grid-level rather than
    // per-cell because a run's stratum is a property of its *shared*
    // trace — one schedule must serve every cell in the batch.
    let mut pooled = (vr.strata > 0 && vr.adaptive.is_some())
        .then(|| StratifiedSummary::equal_weights(vr.strata as usize));

    let mut workers: Vec<GridWorker> = (0..threads)
        .map(|_| GridWorker::with_vr(&plan, vr))
        .collect();
    let mut start = 0usize;
    while start < max_runs && cell_active.iter().any(|&a| a) {
        let n_batch = batch.min(max_runs - start);
        let schedule = batch_schedule(start, n_batch, &vr, pooled.as_ref());
        let active_units: Vec<usize> = (0..n_units)
            .filter(|&u| plan.units[u].lanes.iter().any(|&l| cell_active[lane_cell[l]]))
            .collect();
        let n_active = active_units.len();
        let total = n_batch * n_active;
        let slab = ResultSlab::new(plan.n_lanes * n_batch);
        let next = AtomicUsize::new(0);
        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for mut worker in workers.drain(..) {
                let master = master.clone();
                let plan = &plan;
                let slab = &slab;
                let next = &next;
                let schedule = &schedule;
                let active_units = &active_units;
                handles.push(scope.spawn(move || {
                    while let Some((s, e)) = claim_chunk(next, total, threads) {
                        for item in s..e {
                            // Run-major within the batch, exactly like
                            // the fixed pool.
                            let (off, ui) = (item / n_active, item % n_active);
                            let unit = active_units[ui];
                            let result =
                                worker.run_unit_stratum(&master, start + off, unit, schedule[off]);
                            let lanes = &plan.units[unit].lanes;
                            for &lane in &lanes[1..] {
                                // SAFETY(slab-claim-partition): this
                                // worker owns item (run, unit), and with
                                // it every member lane's slot.
                                unsafe { slab.put(lane * n_batch + off, result.clone()) };
                            }
                            // SAFETY(slab-claim-partition): as above.
                            unsafe { slab.put(lanes[0] * n_batch + off, result) };
                        }
                    }
                    worker
                }));
            }
            for handle in handles {
                // A worker panic is already fatal; re-raise it here. simlint: allow(no-unwrap-in-lib)
                workers.push(handle.join().expect("worker panicked"));
            }
        });

        // Deterministic main-thread fold, (cell, model, run) order —
        // the only place statistics accumulate, and the only input to
        // the stopping and scheduling decisions below.
        let slots = slab.into_results();
        for c in 0..n_cells {
            if !cell_active[c] {
                continue;
            }
            for m in 0..cells[c].models.len() {
                let lane = plan.lane(c, m);
                for off in 0..n_batch {
                    let slot = slots[lane * n_batch + off].as_ref();
                    // Active cells belong to active units, which the
                    // claim counter exhausts. simlint: allow(no-unwrap-in-lib)
                    let r = slot.expect("every active unit produced a result");
                    aggs[lane].push(r);
                    let x = r.ledger.total_overhead_secs() / 3600.0;
                    trackers[lane].push(schedule[off], x);
                    if let Some(p) = pooled.as_mut() {
                        p.push(schedule[off] as usize, x);
                    }
                }
            }
            if let Some(sink) = sink.as_mut() {
                // Fixed-count VR is a single batch covering every run,
                // so the cell is complete here (the debug_assert above
                // rules out adaptive re-batching).
                let lane0 = plan.lane(c, 0);
                sink(&CellResults {
                    cell: c,
                    runs: n_batch,
                    lanes: cells[c].models.len(),
                    slots: &slots[lane0 * n_batch..(lane0 + cells[c].models.len()) * n_batch],
                });
            }
            cell_runs[c] += n_batch;
        }
        start += n_batch;

        if let Some(a) = vr.adaptive {
            for c in 0..n_cells {
                if !cell_active[c] || cell_runs[c] < 2 * batch {
                    continue;
                }
                let done = (0..cells[c].models.len()).all(|m| {
                    trackers[plan.lane(c, m)].converged(a.rel_target, a.confidence)
                });
                if done {
                    cell_active[c] = false;
                }
            }
        }
    }

    let cell_ci_rel: Vec<f64> = (0..n_cells)
        .map(|c| {
            (0..cells[c].models.len())
                .map(|m| trackers[plan.lane(c, m)].rel_ci(confidence))
                .fold(0.0, f64::max)
        })
        .collect();
    let (mut generations, mut reuses) = (0u64, 0u64);
    for w in &workers {
        generations += w.trace_generations;
        reuses += w.trace_reuses;
    }

    let mut agg_it = aggs.into_iter();
    let results: Vec<CampaignResult> = cells
        .iter()
        .map(|cell| CampaignResult {
            models: cell.models.clone(),
            aggregates: cell
                .models
                .iter()
                // Lanes are cell-major contiguous. simlint: allow(no-unwrap-in-lib)
                .map(|_| agg_it.next().expect("one aggregate per lane"))
                .collect(),
            threads,
        })
        .collect();

    GridResult {
        runs_per_cell: cell_runs.iter().copied().max().unwrap_or(0),
        cells: results,
        labels: cells.iter().map(|c| c.label.clone()).collect(),
        cell_runs,
        cell_ci_rel,
        threads,
        trace_groups: plan.trace_groups(),
        lanes: plan.lanes(),
        units: plan.units(),
        trace_generations: generations,
        trace_reuses: reuses,
        leads_digest: leads.digest(),
        analytic_verdicts: vec![None; cells.len()],
        cells_pruned: 0,
        shard_meta: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pckpt_workloads::Application;

    fn app_params(model: ModelKind, app: &str) -> SimParams {
        SimParams::paper_defaults(model, Application::by_name(app).unwrap())
    }

    fn digest(a: &Aggregate) -> (u64, u64, u64) {
        (
            a.total_hours.mean().to_bits(),
            a.ft_ratio_pooled().to_bits(),
            a.failures.sum().to_bits(),
        )
    }

    #[test]
    fn run_many_aggregates_requested_runs() {
        let leads = LeadTimeModel::desh_default();
        let agg = run_many(
            &app_params(ModelKind::B, "POP"),
            &leads,
            &RunnerConfig::new(8, 42),
        );
        assert_eq!(agg.runs(), 8);
        assert!(agg.total_hours.mean() > 0.0);
    }

    #[test]
    fn deterministic_regardless_of_thread_count() {
        let leads = LeadTimeModel::desh_default();
        let mut one = RunnerConfig::new(6, 7);
        one.threads = 1;
        let mut four = RunnerConfig::new(6, 7);
        four.threads = 4;
        let a = run_many(&app_params(ModelKind::P2, "XGC"), &leads, &one);
        let b = run_many(&app_params(ModelKind::P2, "XGC"), &leads, &four);
        assert_eq!(a.runs(), b.runs());
        assert!((a.total_hours.mean() - b.total_hours.mean()).abs() < 1e-9);
        assert!((a.ft_ratio_mean() - b.ft_ratio_mean()).abs() < 1e-12);
    }

    #[test]
    fn paired_campaign_shares_traces() {
        let leads = LeadTimeModel::desh_default();
        // XGC sees ~2.7 failures per 240 h run under Titan thinning —
        // enough for the paired comparison to be meaningful at 20 runs.
        let campaign = run_models(
            &app_params(ModelKind::B, "XGC"),
            &[ModelKind::B, ModelKind::P2],
            &leads,
            &RunnerConfig::new(20, 11),
        );
        let b = campaign.get(ModelKind::B).unwrap();
        let p2 = campaign.get(ModelKind::P2).unwrap();
        // Identical traces → identical failure counts.
        assert_eq!(b.failures.mean(), p2.failures.mean());
        assert!(b.failures.mean() > 1.0, "need failures for the comparison");
        assert!(campaign.get(ModelKind::M1).is_none());
        // P2 mitigates; B does not.
        assert!(p2.ft_ratio_mean() > b.ft_ratio_mean());
        let red = campaign.reduction(ModelKind::P2, ModelKind::B).unwrap();
        assert!(red > 0.0, "P2 must reduce overhead vs B, got {red}%");
    }

    #[test]
    fn chunk_claiming_covers_every_item_exactly_once() {
        // Drive claim_chunk directly: any threads/items combination must
        // partition 0..total into disjoint, exhaustive chunks — including
        // grid-sized index spaces far beyond a single cell's run count.
        for (total, threads) in [(1, 1), (7, 3), (100, 8), (1000, 13), (15_000, 32)] {
            let next = AtomicUsize::new(0);
            let mut covered = vec![false; total];
            while let Some((start, end)) = claim_chunk(&next, total, threads) {
                assert!(start < end && end <= total);
                assert!(end - start <= 64, "chunks stay bounded");
                for slot in &mut covered[start..end] {
                    assert!(!*slot, "item claimed twice");
                    *slot = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "items left unclaimed");
        }
    }

    #[test]
    fn chunk_claiming_tail_is_single_item() {
        // Once the tail is within two items per thread, every claim is a
        // single item — the worst-case straggle behind an otherwise idle
        // pool is one item, independent of the index-space size.
        let (total, threads) = (10_000, 16);
        let next = AtomicUsize::new(0);
        while let Some((start, end)) = claim_chunk(&next, total, threads) {
            let remaining_before = total - start;
            if remaining_before <= threads * 2 {
                assert_eq!(end - start, 1, "tail claims must be single items");
            }
        }
    }

    #[test]
    fn campaign_reports_thread_count() {
        let leads = LeadTimeModel::desh_default();
        let mut cfg = RunnerConfig::new(4, 3);
        cfg.threads = 3;
        let campaign = run_models(
            &app_params(ModelKind::B, "POP"),
            &[ModelKind::B],
            &leads,
            &cfg,
        );
        assert_eq!(campaign.threads, 3);
        // The clamp caps threads at the item count.
        cfg.threads = 64;
        let campaign = run_models(
            &app_params(ModelKind::B, "POP"),
            &[ModelKind::B],
            &leads,
            &cfg,
        );
        assert_eq!(campaign.threads, 4);
    }

    #[test]
    fn pckpt_threads_env_overrides_auto_detection() {
        // Auto mode (threads = 0) honors PCKPT_THREADS. The variable is
        // process-global, so hold the env lock for the whole
        // mutate–assert–restore span and restore before the test ends.
        let _env = crate::env_test_lock();
        std::env::set_var("PCKPT_THREADS", "2");
        let cfg = RunnerConfig::new(5, 9);
        assert_eq!(cfg.effective_threads(), 2);
        std::env::set_var("PCKPT_THREADS", "not-a-number");
        assert!(cfg.effective_threads() >= 1, "garbage falls back to cores");
        std::env::remove_var("PCKPT_THREADS");
        let mut pinned = cfg;
        pinned.threads = 7;
        std::env::set_var("PCKPT_THREADS", "2");
        assert_eq!(pinned.effective_threads(), 5, "explicit threads win (clamped to runs)");
        std::env::remove_var("PCKPT_THREADS");
    }

    #[test]
    fn runs_spec_parses_fixed_and_auto() {
        assert_eq!(parse_runs_spec("500"), Some(RunsSpec::Fixed(500)));
        assert_eq!(parse_runs_spec(" 12 "), Some(RunsSpec::Fixed(12)));
        assert_eq!(parse_runs_spec("0"), None);
        assert_eq!(parse_runs_spec("banana"), None);
        assert_eq!(
            parse_runs_spec("auto"),
            Some(RunsSpec::Auto(AdaptiveConfig::default()))
        );
        match parse_runs_spec("auto:0.02") {
            Some(RunsSpec::Auto(a)) => {
                assert!((a.rel_target - 0.02).abs() < 1e-12);
                assert_eq!(a.max_runs, AdaptiveConfig::default().max_runs);
            }
            other => panic!("expected auto spec, got {other:?}"),
        }
        match parse_runs_spec("auto:0.05:512") {
            Some(RunsSpec::Auto(a)) => {
                assert!((a.rel_target - 0.05).abs() < 1e-12);
                assert_eq!(a.max_runs, 512);
            }
            other => panic!("expected auto spec, got {other:?}"),
        }
        assert_eq!(parse_runs_spec("auto:1.5"), None, "target must be < 1");
        assert_eq!(parse_runs_spec("auto:0.01:4"), None, "cap below batch");
        assert_eq!(parse_runs_spec("autox"), None);
        assert_eq!(parse_runs_spec("auto:0.01:64:9"), None);
    }

    #[test]
    fn vr_spec_parses_modes_and_rejects_typos() {
        assert_eq!(parse_vr_spec(""), Some(VrConfig::default()));
        let a = parse_vr_spec("antithetic").unwrap();
        assert!(a.antithetic && a.strata == 0 && a.adaptive.is_none());
        let s = parse_vr_spec("stratified").unwrap();
        assert_eq!(s.strata, 8);
        let both = parse_vr_spec("antithetic,stratified:4").unwrap();
        assert!(both.antithetic);
        assert_eq!(both.strata, 4);
        assert_eq!(parse_vr_spec("stratified:0"), None);
        assert_eq!(parse_vr_spec("antithetc"), None, "typos must not half-apply");
    }

    #[test]
    fn with_env_vr_reads_the_documented_variables() {
        let _env = crate::env_test_lock();
        std::env::set_var("PCKPT_VR", "antithetic,stratified:4");
        std::env::set_var("PCKPT_RUNS", "auto:0.02:256");
        let cfg = RunnerConfig::new(10, 7).with_env_vr();
        std::env::remove_var("PCKPT_VR");
        std::env::remove_var("PCKPT_RUNS");
        assert!(cfg.vr.antithetic);
        assert_eq!(cfg.vr.strata, 4);
        let a = cfg.vr.adaptive.expect("auto enables adaptive allocation");
        assert!((a.rel_target - 0.02).abs() < 1e-12);
        assert_eq!(a.max_runs, 256);
        assert_eq!(cfg.runs, 256, "runs becomes the adaptive cap");
        // A plain numeric PCKPT_RUNS is the caller's business.
        std::env::set_var("PCKPT_RUNS", "77");
        let cfg = RunnerConfig::new(10, 7).with_env_vr();
        std::env::remove_var("PCKPT_RUNS");
        assert_eq!(cfg.runs, 10);
        assert!(cfg.vr.adaptive.is_none());
    }

    #[test]
    fn matches_serial_fresh_build_reference() {
        // The grid engine must reproduce the pre-refactor semantics
        // bit-for-bit: run i draws from master.split(i), the trace is
        // generated first, and every model runs against a fresh clone
        // with bg stream split(0xB6).
        let leads = LeadTimeModel::desh_default();
        let base = app_params(ModelKind::B, "XGC");
        let models = [ModelKind::B, ModelKind::P2];
        let cfg = RunnerConfig {
            runs: 12,
            base_seed: 41,
            threads: 3,
            vr: VrConfig::default(),
        };
        let campaign = run_models(&base, &models, &leads, &cfg);

        let master = SimRng::seed_from(cfg.base_seed);
        let tcfg = trace_config(&base);
        let mut reference: Vec<Aggregate> = models.iter().map(|_| Aggregate::new()).collect();
        for run in 0..cfg.runs {
            let mut rng = master.split(run as u64);
            let trace = FailureTrace::generate(&tcfg, &leads, &base.predictor, &mut rng);
            let bg_rng = rng.split(0xB6);
            for (m, &model) in models.iter().enumerate() {
                let mut p = base.clone();
                p.model = model;
                let result = CrSim::new(p, trace.clone(), &leads)
                    .with_bg_rng(bg_rng.clone())
                    .run();
                reference[m].push(&result);
            }
        }
        for (agg, reference) in campaign.aggregates.iter().zip(&reference) {
            assert_eq!(agg.runs(), reference.runs());
            assert_eq!(
                agg.total_hours.mean().to_bits(),
                reference.total_hours.mean().to_bits(),
                "campaign diverged from the serial fresh-build reference"
            );
            assert_eq!(
                agg.ft_ratio_pooled().to_bits(),
                reference.ft_ratio_pooled().to_bits()
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let leads = LeadTimeModel::desh_default();
        let a = run_many(
            &app_params(ModelKind::B, "XGC"),
            &leads,
            &RunnerConfig::new(5, 1),
        );
        let b = run_many(
            &app_params(ModelKind::B, "XGC"),
            &leads,
            &RunnerConfig::new(5, 2),
        );
        assert!(
            (a.failures.mean() - b.failures.mean()).abs() > 0.0
                || (a.total_hours.mean() - b.total_hours.mean()).abs() > 1e-12
        );
    }

    /// A fig4-shaped sweep: lead scales × [B, P2] for one app.
    fn scale_sweep_cells(app: &str, scales: &[f64]) -> Vec<GridCell> {
        scales
            .iter()
            .map(|&s| {
                let mut p = app_params(ModelKind::B, app);
                p.lead_scale = s;
                GridCell::new(p, &[ModelKind::B, ModelKind::P2])
                    .with_label(format!("{app}@{s}"))
            })
            .collect()
    }

    #[test]
    fn grid_cells_match_standalone_campaigns_bit_for_bit() {
        // The core equivalence contract, across every sharing mechanism:
        // multi-view lead-scale groups, prediction-blind dedup, and a
        // same-config pair (single-group, multiple cells).
        let leads = LeadTimeModel::desh_default();
        let mut cells = scale_sweep_cells("XGC", &[1.5, 1.0, 0.5]);
        // An α-sweep mate of the 1.0 cell: same trace config, different
        // (non-trace) simulation parameter.
        let mut alpha = app_params(ModelKind::B, "XGC");
        alpha.lm_transfer_factor = 6.0;
        cells.push(GridCell::new(alpha, &[ModelKind::P2]).with_label("alpha6"));
        let cfg = RunnerConfig {
            runs: 10,
            base_seed: 23,
            threads: 3,
            vr: VrConfig::default(),
        };
        let grid = run_grid(&cells, &leads, &cfg);
        assert_eq!(grid.cells.len(), 4);
        // 3 scale cells in one multi-view group (+ the α mate, same
        // group): one trace group total.
        assert_eq!(grid.trace_groups, 1);
        // 7 lanes, B deduplicated across the 3 scale cells → 5 units.
        assert_eq!(grid.lanes, 7);
        assert_eq!(grid.units, 5);
        for (cell, campaign) in cells.iter().zip(&grid.cells) {
            let standalone = run_models(&cell.params, &cell.models, &leads, &cfg);
            for (a, b) in campaign.aggregates.iter().zip(&standalone.aggregates) {
                assert_eq!(digest(a), digest(b), "cell {} diverged", cell.label);
            }
        }
        // Labels resolve.
        assert!(grid.by_label("alpha6").is_some());
        assert!(grid.by_label("nope").is_none());
    }

    #[test]
    fn grid_is_thread_count_invariant() {
        let leads = LeadTimeModel::desh_default();
        let cells = scale_sweep_cells("XGC", &[1.1, 0.9]);
        let mut digests = Vec::new();
        for threads in [1, 3, 8] {
            let cfg = RunnerConfig {
                runs: 9,
                base_seed: 5,
                threads,
                vr: VrConfig::default(),
            };
            let grid = run_grid(&cells, &leads, &cfg);
            let d: Vec<_> = grid
                .cells
                .iter()
                .flat_map(|c| c.aggregates.iter().map(digest))
                .collect();
            digests.push(d);
        }
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[0], digests[2]);
    }

    #[test]
    fn lead_blind_dedup_is_bit_identical_and_counted() {
        // Two B-only cells at different lead scales collapse to one unit;
        // their aggregates are bit-identical to each other *and* to
        // standalone campaigns (model B never reads a lead).
        let leads = LeadTimeModel::desh_default();
        let cells = [
            {
                let mut p = app_params(ModelKind::B, "POP");
                p.lead_scale = 1.5;
                GridCell::new(p, &[ModelKind::B])
            },
            {
                let mut p = app_params(ModelKind::B, "POP");
                p.lead_scale = 0.5;
                GridCell::new(p, &[ModelKind::B])
            },
        ];
        let cfg = RunnerConfig::new(8, 77);
        let grid = run_grid(&cells, &leads, &cfg);
        assert_eq!(grid.units, 1, "B lanes must share one execution unit");
        assert_eq!(grid.lanes, 2);
        let a = &grid.cells[0].aggregates[0];
        let b = &grid.cells[1].aggregates[0];
        assert_eq!(digest(a), digest(b));
        let standalone = run_models(&cells[1].params, &[ModelKind::B], &leads, &cfg);
        assert_eq!(digest(b), digest(&standalone.aggregates[0]));
    }

    #[test]
    fn dedup_requires_equal_non_lead_params() {
        // A differing non-lead parameter (here α, which B ignores in
        // practice but equality cannot prove harmless) blocks dedup.
        let leads = LeadTimeModel::desh_default();
        let mut a = app_params(ModelKind::B, "POP");
        a.lead_scale = 1.5;
        let mut b = app_params(ModelKind::B, "POP");
        b.lead_scale = 0.5;
        b.drain_concurrency = 256;
        let cells = [
            GridCell::new(a, &[ModelKind::B]),
            GridCell::new(b, &[ModelKind::B]),
        ];
        let plan = GridPlan::new(&cells, &leads);
        assert_eq!(plan.units(), 2, "non-lead param difference blocks dedup");
        assert_eq!(plan.trace_groups(), 1, "trace sharing is still fine");
    }

    #[test]
    fn trace_cache_accounting_covers_all_units_single_thread() {
        let leads = LeadTimeModel::desh_default();
        let cells = scale_sweep_cells("XGC", &[1.5, 1.0, 0.5]);
        let mut cfg = RunnerConfig::new(6, 3);
        cfg.threads = 1;
        let grid = run_grid(&cells, &leads, &cfg);
        // One generation per (group, run) on a single thread; every other
        // unit execution is a hit.
        assert_eq!(grid.trace_generations, (grid.trace_groups * 6) as u64);
        assert_eq!(
            grid.trace_generations + grid.trace_reuses,
            (grid.units * 6) as u64
        );
        assert!(grid.trace_cache_hit_rate() > 0.5);
        assert!(grid.meta_json("t").contains("\"trace_groups\":1"));
    }

    #[test]
    fn distinct_predictors_do_not_share_traces() {
        // Prediction draws happen during generation, so cells with
        // different predictors must land in different groups even when
        // the rest of the trace config matches.
        let leads = LeadTimeModel::desh_default();
        let a = app_params(ModelKind::B, "XGC");
        let mut b = app_params(ModelKind::B, "XGC");
        b.predictor = b.predictor.with_false_negative_rate(0.5);
        let cells = [
            GridCell::new(a, &[ModelKind::B]),
            GridCell::new(b, &[ModelKind::B]),
        ];
        let plan = GridPlan::new(&cells, &leads);
        assert_eq!(plan.trace_groups(), 2);
        assert_eq!(plan.units(), 2);
    }

    const CROSSOVER: &[ModelKind] = &[ModelKind::B, ModelKind::M2, ModelKind::P1];

    #[test]
    fn prefilter_splices_pruned_and_simulated_cells_in_input_order() {
        let leads = LeadTimeModel::desh_default();
        let cfg = RunnerConfig::new(4, 9);
        // CHIMERA's crossover is analytically decidable (p-ckpt, ~24 %
        // clearance); the XGC [B, P2] cell has a hybrid model and must
        // simulate.
        let cells = [
            GridCell::new(app_params(ModelKind::B, "CHIMERA"), CROSSOVER),
            GridCell::new(app_params(ModelKind::B, "XGC"), &[ModelKind::B, ModelKind::P2]),
        ];
        let filtered = run_grid_filtered(&cells, &leads, &cfg, Some(&Prefilter::default()));
        assert_eq!(filtered.cells_pruned, 1);
        assert_eq!(filtered.cells_simulated(), 1);
        let verdict = filtered.analytic_verdicts[0].expect("CHIMERA is decidable");
        assert!(verdict.pckpt_wins);
        assert!(filtered.analytic_verdicts[1].is_none());

        // The pruned cell keeps its slot, label and model list but has
        // no aggregates — get() answers None rather than panicking.
        assert_eq!(filtered.labels, vec!["CHIMERA", "XGC"]);
        assert_eq!(filtered.cell(0).models, CROSSOVER.to_vec());
        assert!(filtered.cell(0).aggregates.is_empty());
        assert!(filtered.cell(0).get(ModelKind::P1).is_none());

        // The surviving cell is bit-identical to the unfiltered sweep.
        let unfiltered = run_grid_filtered(&cells, &leads, &cfg, None);
        assert_eq!(unfiltered.cells_pruned, 0);
        for (f, u) in filtered
            .cell(1)
            .aggregates
            .iter()
            .zip(&unfiltered.cell(1).aggregates)
        {
            assert_eq!(digest(f), digest(u));
        }

        let meta = filtered.meta_json("prefilter_test");
        assert!(meta.contains("\"prefilter_pruned\":1"), "{meta}");
        assert!(meta.contains("\"prefilter_simulated\":1"), "{meta}");
    }

    #[test]
    fn fully_pruned_grid_skips_the_pool_entirely() {
        let leads = LeadTimeModel::desh_default();
        let cfg = RunnerConfig::new(4, 9);
        // CHIMERA → p-ckpt, POP (σ at the 0.90 cap) → LM: both decided.
        let cells = [
            GridCell::new(app_params(ModelKind::B, "CHIMERA"), CROSSOVER),
            GridCell::new(app_params(ModelKind::B, "POP"), CROSSOVER),
        ];
        let grid = run_grid_filtered(&cells, &leads, &cfg, Some(&Prefilter::default()));
        assert_eq!(grid.cells_pruned, 2);
        assert_eq!(grid.cells_simulated(), 0);
        assert_eq!((grid.lanes, grid.units, grid.trace_groups), (0, 0, 0));
        assert_eq!(grid.trace_generations + grid.trace_reuses, 0);
        assert!(grid.analytic_verdicts[0].unwrap().pckpt_wins);
        assert!(!grid.analytic_verdicts[1].unwrap().pckpt_wins);
        assert!(grid.cells.iter().all(|c| c.aggregates.is_empty()));
    }

    fn vr_cfg(runs: usize, seed: u64, threads: usize, vr: VrConfig) -> RunnerConfig {
        RunnerConfig {
            runs,
            base_seed: seed,
            threads,
            vr,
        }
    }

    #[test]
    fn vr_modes_are_thread_count_invariant() {
        // Antithetic, stratified, combined, and adaptive: each mode's
        // full grid digest — including adaptive per-cell run counts —
        // must be identical across 1/3/8 threads.
        let leads = LeadTimeModel::desh_default();
        let cells = scale_sweep_cells("XGC", &[1.1, 0.9]);
        let modes = [
            VrConfig {
                antithetic: true,
                ..VrConfig::default()
            },
            VrConfig {
                strata: 4,
                ..VrConfig::default()
            },
            VrConfig {
                antithetic: true,
                strata: 2,
                ..VrConfig::default()
            },
            VrConfig {
                antithetic: true,
                adaptive: Some(AdaptiveConfig {
                    rel_target: 0.05,
                    batch: 8,
                    max_runs: 48,
                    ..AdaptiveConfig::default()
                }),
                ..VrConfig::default()
            },
        ];
        for vr in modes {
            let mut digests = Vec::new();
            for threads in [1, 3, 8] {
                let grid = run_grid(&cells, &leads, &vr_cfg(16, 5, threads, vr));
                let d: Vec<_> = grid
                    .cells
                    .iter()
                    .flat_map(|c| c.aggregates.iter().map(digest))
                    .collect();
                digests.push((grid.cell_runs.clone(), d));
            }
            assert_eq!(digests[0], digests[1], "{vr:?}");
            assert_eq!(digests[0], digests[2], "{vr:?}");
        }
    }

    #[test]
    fn antithetic_mode_produces_exact_run_counts() {
        // Pair members replay the same stream mirrored (uniforms
        // reflected, bounded integer draws reversed), which anti-
        // correlates their thinning accepts; tests/variance_reduction.rs
        // pins the resulting CI tightening. Here, sanity-check the
        // machinery end to end: antithetic runs still produce valid
        // results and the run count is exact.
        let leads = LeadTimeModel::desh_default();
        let cells = [GridCell::new(
            app_params(ModelKind::B, "XGC"),
            &[ModelKind::B],
        )];
        let vr = VrConfig {
            antithetic: true,
            ..VrConfig::default()
        };
        let grid = run_grid(&cells, &leads, &vr_cfg(32, 9, 2, vr));
        let agg = &grid.cells[0].aggregates[0];
        assert_eq!(agg.runs(), 32);
        assert!(agg.total_hours.mean() > 0.0);
        assert_eq!(grid.cell_runs, vec![32]);
    }

    #[test]
    fn adaptive_mode_stops_cells_individually_and_respects_the_cap() {
        let leads = LeadTimeModel::desh_default();
        // A loose target converges fast; a tight one runs to the cap.
        let cells = scale_sweep_cells("XGC", &[1.5, 0.5]);
        let loose = VrConfig {
            adaptive: Some(AdaptiveConfig {
                rel_target: 0.5,
                batch: 8,
                max_runs: 64,
                ..AdaptiveConfig::default()
            }),
            ..VrConfig::default()
        };
        let grid = run_grid(&cells, &leads, &vr_cfg(64, 3, 2, loose));
        // ≥ 2 batches before any stop; every cell's count is a batch
        // multiple and within the cap.
        for (&r, campaign) in grid.cell_runs.iter().zip(&grid.cells) {
            assert!(r >= 16 && r <= 64 && r % 8 == 0, "cell ran {r}");
            for a in &campaign.aggregates {
                assert_eq!(a.runs() as usize, r, "aggregate matches cell_runs");
            }
        }
        assert_eq!(grid.runs_per_cell, *grid.cell_runs.iter().max().unwrap());
        assert!(grid.cell_runs.iter().any(|&r| r < 64), "loose target stops early");

        let tight = VrConfig {
            adaptive: Some(AdaptiveConfig {
                rel_target: 1e-6,
                batch: 8,
                max_runs: 24,
                ..AdaptiveConfig::default()
            }),
            ..VrConfig::default()
        };
        let grid = run_grid(&cells, &leads, &vr_cfg(24, 3, 2, tight));
        assert_eq!(grid.cell_runs, vec![24, 24], "unreachable target runs to cap");
        assert!(grid.worst_ci_rel() > 1e-6);
        let meta = grid.meta_json("vr_test");
        assert!(meta.contains("\"total_runs\":48"), "{meta}");
        assert!(meta.contains("\"runs_min\":24"), "{meta}");
    }

    #[test]
    fn stratified_fixed_mode_balances_strata_round_robin() {
        // 12 runs over 4 strata → each stratum holds exactly 3 runs of
        // the lane tracker; verify through the reported rel CI being
        // finite and the aggregate holding all runs.
        let leads = LeadTimeModel::desh_default();
        let cells = [GridCell::new(
            app_params(ModelKind::B, "POP"),
            &[ModelKind::B],
        )];
        let vr = VrConfig {
            strata: 4,
            ..VrConfig::default()
        };
        let grid = run_grid(&cells, &leads, &vr_cfg(12, 17, 2, vr));
        assert_eq!(grid.cells[0].aggregates[0].runs(), 12);
        assert!(grid.cell_ci_rel[0] > 0.0, "stratified CI is statable");
    }

    #[test]
    fn batch_schedule_is_pair_aligned_and_exhaustive() {
        let vr = VrConfig {
            antithetic: true,
            strata: 3,
            ..VrConfig::default()
        };
        // Pilot (no pooled variance): pairs round-robin the strata.
        let sched = batch_schedule(0, 12, &vr, None);
        assert_eq!(sched.len(), 12);
        for p in 0..6 {
            assert_eq!(sched[2 * p], sched[2 * p + 1], "pair members share a stratum");
        }
        // Neyman: all samples flow to the only-variance stratum, blocks
        // stay pair-aligned.
        let mut pooled = StratifiedSummary::equal_weights(3);
        for i in 0..8 {
            pooled.push(0, i as f64); // spread
            pooled.push(1, 1.0); // constant
            pooled.push(2, 1.0); // constant
        }
        let sched = batch_schedule(12, 8, &vr, Some(&pooled));
        assert_eq!(sched, vec![0; 8], "all slots go to the spread stratum");
    }

    #[test]
    fn no_prefilter_means_no_pruning_anywhere() {
        let leads = LeadTimeModel::desh_default();
        let cfg = RunnerConfig::new(2, 5);
        let cells = [GridCell::new(app_params(ModelKind::B, "CHIMERA"), CROSSOVER)];
        let grid = run_grid_filtered(&cells, &leads, &cfg, None);
        assert_eq!(grid.cells_pruned, 0);
        assert!(grid.analytic_verdicts.iter().all(|v| v.is_none()));
        assert_eq!(grid.cell(0).aggregates.len(), CROSSOVER.len());
    }
}

//! Monte-Carlo campaign driver.
//!
//! The paper averages every reported number over 1000 simulation runs
//! (Sec. V). This module provides:
//!
//! * [`run_many`] — N runs of one configuration, aggregated;
//! * [`run_models`] — N runs of *several models over identical failure
//!   traces* (paired comparison: every model faces the same fates, which
//!   removes between-model sampling noise from Figs. 6–8);
//!
//! both thread-parallel with deterministic per-run RNG streams: run *i*
//! always draws from `master.split(i)` regardless of thread count, so
//! results are bit-identical from laptop to CI.
//!
//! ### Execution model
//!
//! Each worker thread owns a [`RunArena`]: one [`CrSim`] per model plus
//! one event queue and one failure-trace buffer, built once and recycled
//! with `reset_for_run` across every run the worker executes — after the
//! first few runs the steady state performs no heap allocation (enforced
//! by a counting-allocator test in `crates/core/tests/alloc_free.rs`).
//! Runs are handed out by atomic chunk-claiming (work stealing): workers
//! grab a shrinking batch of run indices from a shared counter, so a
//! worker that lands expensive traces never straggles with a fixed
//! stride's worth of leftover work. Determinism is unaffected — run *i*
//! seeds from `master.split(i)` no matter which worker claims it, and the
//! fold into aggregates happens on the main thread in run order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use pckpt_desim::{run_with_queue, EventQueue};
use pckpt_failure::{FailureTrace, LeadTimeModel, TraceConfig};
use pckpt_simobs::{Recorder, Recording};
use pckpt_simrng::SimRng;

use crate::config::{ModelKind, SimParams};
use crate::metrics::{Aggregate, RunResult};
use crate::sim::{CrSim, Ev};

/// Campaign size and execution parameters.
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfig {
    /// Number of Monte-Carlo runs.
    pub runs: usize,
    /// Master seed; run *i* uses stream `split(i)`.
    pub base_seed: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

impl RunnerConfig {
    /// `runs` runs from a seed, auto-threaded.
    pub fn new(runs: usize, base_seed: u64) -> Self {
        Self {
            runs,
            base_seed,
            threads: 0,
        }
    }

    fn effective_threads(&self) -> usize {
        let t = if self.threads == 0 {
            // `PCKPT_THREADS` overrides auto-detection (containers and CI
            // runners often report the host's core count, not the cgroup
            // quota); an unset/unparsable value falls through to the
            // detected parallelism.
            let from_env = std::env::var("PCKPT_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n > 0);
            from_env.unwrap_or_else(|| {
                thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            })
        } else {
            self.threads
        };
        t.max(1).min(self.runs.max(1))
    }
}

/// Results of a multi-model campaign over paired traces.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The models, in the order requested.
    pub models: Vec<ModelKind>,
    /// One aggregate per model (index-aligned with `models`).
    pub aggregates: Vec<Aggregate>,
    /// Worker threads the campaign actually ran on (after the
    /// `PCKPT_THREADS` override, core auto-detection, and the
    /// runs-per-thread clamp).
    pub threads: usize,
}

impl CampaignResult {
    /// The aggregate for `model`, if it was part of the campaign.
    pub fn get(&self, model: ModelKind) -> Option<&Aggregate> {
        self.models
            .iter()
            .position(|&m| m == model)
            .map(|i| &self.aggregates[i])
    }

    /// Overhead reduction (%) of `model` relative to `base`.
    pub fn reduction(&self, model: ModelKind, base: ModelKind) -> Option<f64> {
        Some(self.get(model)?.reduction_vs(self.get(base)?))
    }
}

fn trace_config(params: &SimParams) -> TraceConfig {
    TraceConfig::new(
        params.distribution,
        params.app.nodes,
        params.app.compute_hours * params.horizon_factor,
    )
    .with_lead_scale(params.lead_scale)
    .with_projection(params.projection)
    .with_node_selection(params.node_selection)
    .with_lead_error(params.lead_error_cv)
}

/// A reusable per-worker simulation arena: one [`CrSim`] per model, one
/// event queue, and one failure-trace buffer, all built once and recycled
/// across runs.
///
/// Building a `CrSim` is expensive in fluid mode (the PFS capacity table
/// is memoized per instance) and every fresh build allocates queues, maps
/// and trace storage. The arena pays those costs once per worker; each
/// subsequent [`run_one`](RunArena::run_one) resets state in place and —
/// after the first few runs have grown the buffers — allocates nothing.
pub struct RunArena<'a> {
    leads: &'a LeadTimeModel,
    base: SimParams,
    tcfg: TraceConfig,
    sims: Vec<CrSim>,
    queue: EventQueue<Ev>,
    trace: FailureTrace,
}

impl<'a> RunArena<'a> {
    /// Builds an arena simulating each of `models` with otherwise
    /// identical parameters (`base_params.model` is ignored).
    pub fn new(base_params: &SimParams, models: &[ModelKind], leads: &'a LeadTimeModel) -> Self {
        assert!(!models.is_empty(), "at least one model required");
        let sims = models
            .iter()
            .map(|&model| {
                let mut p = base_params.clone();
                p.model = model;
                CrSim::new(p, FailureTrace::default(), leads)
            })
            .collect();
        Self {
            leads,
            base: base_params.clone(),
            tcfg: trace_config(base_params),
            sims,
            queue: EventQueue::new(),
            trace: FailureTrace::default(),
        }
    }

    /// Number of models this arena simulates per run.
    pub fn models(&self) -> usize {
        self.sims.len()
    }

    /// Executes run `run` for every model, writing one result per model
    /// into `out` (index-aligned with the arena's model list).
    ///
    /// Draw-for-draw identical to building everything fresh: the run's
    /// RNG stream is `master.split(run)`, trace generation consumes it
    /// first, and every model shares the same background-traffic stream
    /// `rng.split(0xB6)` (paired comparison).
    // simlint: hot
    pub fn run_one(&mut self, master: &SimRng, run: usize, out: &mut [Option<RunResult>]) {
        assert_eq!(out.len(), self.sims.len(), "one slot per model");
        let mut rng = master.split(run as u64);
        self.trace
            .generate_into(&self.tcfg, self.leads, &self.base.predictor, &mut rng);
        let bg_rng = rng.split(0xB6);
        for (sim, slot) in self.sims.iter_mut().zip(out.iter_mut()) {
            self.queue.reset();
            sim.reset_for_run(&self.trace, bg_rng.clone());
            let sched_before = self.queue.scheduled_total();
            let (_, handled) = run_with_queue(sim, &mut self.queue, 10_000_000);
            sim.set_queue_obs(
                handled,
                self.queue.scheduled_total() - sched_before,
                self.queue.depth_hwm() as u64,
            );
            *slot = Some(sim.result());
        }
    }

    /// Installs a structured-event recorder on the event queue and every
    /// model simulator in this arena. With the `trace` feature disabled
    /// the recorder is a ZST and this is a no-op.
    pub fn install_recorder(&mut self, rec: Recorder) {
        self.queue.set_recorder(rec.clone());
        for sim in &mut self.sims {
            sim.set_recorder(rec.clone());
        }
    }
}

/// Executes a single run of one model under a structured-event recorder
/// and returns both the run's result and the captured [`Recording`].
///
/// The run is draw-for-draw identical to the same `(base_seed, run)` pair
/// inside a campaign: the run's RNG stream is `master.split(run)` and the
/// background-traffic stream is `rng.split(0xB6)`. With the `trace`
/// feature disabled the recorder records nothing and the returned
/// recording is empty.
pub fn record_run(
    params: &SimParams,
    leads: &LeadTimeModel,
    base_seed: u64,
    run: usize,
    capacity: usize,
) -> (RunResult, Recording) {
    let rec = Recorder::enabled(capacity);
    let mut arena = RunArena::new(params, &[params.model], leads);
    arena.install_recorder(rec.clone());
    let master = SimRng::seed_from(base_seed);
    let mut out = [None];
    arena.run_one(&master, run, &mut out);
    // run_one fills every slot. simlint: allow(no-unwrap-in-lib)
    let result = out[0].take().expect("run produced a result");
    (result, rec.take())
}

/// Claims the next chunk of run indices `[start, end)` from the shared
/// counter, or `None` when the campaign is exhausted. Chunks shrink as
/// the tail approaches (¼ of the remaining work per thread, clamped to
/// 1–16 runs) so no worker sits on a long private backlog while others
/// idle.
fn claim_chunk(next: &AtomicUsize, runs: usize, threads: usize) -> Option<(usize, usize)> {
    loop {
        let cur = next.load(Ordering::Relaxed);
        if cur >= runs {
            return None;
        }
        let k = ((runs - cur) / (threads * 4)).clamp(1, 16).min(runs - cur);
        match next.compare_exchange(cur, cur + k, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return Some((cur, cur + k)),
            Err(_) => continue, // lost the race; re-read and retry
        }
    }
}

/// Runs one configuration `config.runs` times and aggregates.
pub fn run_many(params: &SimParams, leads: &LeadTimeModel, config: &RunnerConfig) -> Aggregate {
    let campaign = run_models(params, &[params.model], leads, config);
    // run_models returns one aggregate per requested model. simlint: allow(no-unwrap-in-lib)
    campaign.aggregates.into_iter().next().expect("one model")
}

/// Runs several models over paired failure traces.
///
/// `base_params.model` is ignored; each entry of `models` is simulated
/// with otherwise identical parameters. Trace generation consumes the
/// run's RNG stream once, so every model sees the same failures, leads,
/// prediction outcomes and false positives.
pub fn run_models(
    base_params: &SimParams,
    models: &[ModelKind],
    leads: &LeadTimeModel,
    config: &RunnerConfig,
) -> CampaignResult {
    assert!(!models.is_empty(), "at least one model required");
    assert!(config.runs > 0, "at least one run required");
    let master = SimRng::seed_from(config.base_seed);
    let threads = config.effective_threads();
    let n_models = models.len();

    // Workers ship per-run results into preallocated flat slots; the fold
    // happens on the main thread in run order, so the aggregate is
    // *bit-identical* for any thread count and any work-stealing
    // interleaving (float accumulation is order-sensitive at the ulp
    // level, and "same seed, same numbers" is part of this crate's
    // contract).
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<RunResult>>> = Mutex::new(vec![None; config.runs * n_models]);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let master = master.clone();
            let next = &next;
            let slots = &slots;
            let handle = scope.spawn(move || {
                let mut arena = RunArena::new(base_params, models, leads);
                let mut local: Vec<Option<RunResult>> = vec![None; n_models];
                while let Some((start, end)) = claim_chunk(next, config.runs, threads) {
                    for run in start..end {
                        arena.run_one(&master, run, &mut local);
                        // Lock poisoning implies a worker already panicked,
                        // which join() re-raises. simlint: allow(no-unwrap-in-lib)
                        let mut guard = slots.lock().expect("result store poisoned");
                        for (m, slot) in local.iter_mut().enumerate() {
                            guard[run * n_models + m] = slot.take();
                        }
                    }
                }
            });
            handles.push(handle);
        }
        for handle in handles {
            // A worker panic is already fatal; re-raise it here. simlint: allow(no-unwrap-in-lib)
            handle.join().expect("worker panicked");
        }
    });

    let mut aggregates: Vec<Aggregate> = models.iter().map(|_| Aggregate::new()).collect();
    // Same guard as above. simlint: allow(no-unwrap-in-lib)
    let slots = slots.into_inner().expect("result store poisoned");
    for (i, slot) in slots.into_iter().enumerate() {
        // claim_chunk hands out 0..runs exactly once. simlint: allow(no-unwrap-in-lib)
        let result = slot.expect("every run produced");
        aggregates[i % n_models].push(&result);
    }

    CampaignResult {
        models: models.to_vec(),
        aggregates,
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pckpt_workloads::Application;

    fn app_params(model: ModelKind, app: &str) -> SimParams {
        SimParams::paper_defaults(model, Application::by_name(app).unwrap())
    }

    #[test]
    fn run_many_aggregates_requested_runs() {
        let leads = LeadTimeModel::desh_default();
        let agg = run_many(
            &app_params(ModelKind::B, "POP"),
            &leads,
            &RunnerConfig::new(8, 42),
        );
        assert_eq!(agg.runs(), 8);
        assert!(agg.total_hours.mean() > 0.0);
    }

    #[test]
    fn deterministic_regardless_of_thread_count() {
        let leads = LeadTimeModel::desh_default();
        let mut one = RunnerConfig::new(6, 7);
        one.threads = 1;
        let mut four = RunnerConfig::new(6, 7);
        four.threads = 4;
        let a = run_many(&app_params(ModelKind::P2, "XGC"), &leads, &one);
        let b = run_many(&app_params(ModelKind::P2, "XGC"), &leads, &four);
        assert_eq!(a.runs(), b.runs());
        assert!((a.total_hours.mean() - b.total_hours.mean()).abs() < 1e-9);
        assert!((a.ft_ratio_mean() - b.ft_ratio_mean()).abs() < 1e-12);
    }

    #[test]
    fn paired_campaign_shares_traces() {
        let leads = LeadTimeModel::desh_default();
        // XGC sees ~2.7 failures per 240 h run under Titan thinning —
        // enough for the paired comparison to be meaningful at 20 runs.
        let campaign = run_models(
            &app_params(ModelKind::B, "XGC"),
            &[ModelKind::B, ModelKind::P2],
            &leads,
            &RunnerConfig::new(20, 11),
        );
        let b = campaign.get(ModelKind::B).unwrap();
        let p2 = campaign.get(ModelKind::P2).unwrap();
        // Identical traces → identical failure counts.
        assert_eq!(b.failures.mean(), p2.failures.mean());
        assert!(b.failures.mean() > 1.0, "need failures for the comparison");
        assert!(campaign.get(ModelKind::M1).is_none());
        // P2 mitigates; B does not.
        assert!(p2.ft_ratio_mean() > b.ft_ratio_mean());
        let red = campaign.reduction(ModelKind::P2, ModelKind::B).unwrap();
        assert!(red > 0.0, "P2 must reduce overhead vs B, got {red}%");
    }

    #[test]
    fn chunk_claiming_covers_every_run_exactly_once() {
        // Drive claim_chunk directly: any threads/runs combination must
        // partition 0..runs into disjoint, exhaustive chunks.
        for (runs, threads) in [(1, 1), (7, 3), (100, 8), (1000, 13)] {
            let next = AtomicUsize::new(0);
            let mut covered = vec![false; runs];
            while let Some((start, end)) = claim_chunk(&next, runs, threads) {
                assert!(start < end && end <= runs);
                for slot in &mut covered[start..end] {
                    assert!(!*slot, "run claimed twice");
                    *slot = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "runs left unclaimed");
        }
    }

    #[test]
    fn campaign_reports_thread_count() {
        let leads = LeadTimeModel::desh_default();
        let mut cfg = RunnerConfig::new(4, 3);
        cfg.threads = 3;
        let campaign = run_models(
            &app_params(ModelKind::B, "POP"),
            &[ModelKind::B],
            &leads,
            &cfg,
        );
        assert_eq!(campaign.threads, 3);
        // The clamp caps threads at the run count.
        cfg.threads = 64;
        let campaign = run_models(
            &app_params(ModelKind::B, "POP"),
            &[ModelKind::B],
            &leads,
            &cfg,
        );
        assert_eq!(campaign.threads, 4);
    }

    #[test]
    fn pckpt_threads_env_overrides_auto_detection() {
        // Auto mode (threads = 0) honors PCKPT_THREADS. The variable is
        // process-global, so restore it before the test ends; results are
        // thread-count-independent, so a concurrent reader only sees a
        // different (still correct) parallelism.
        std::env::set_var("PCKPT_THREADS", "2");
        let cfg = RunnerConfig::new(5, 9);
        assert_eq!(cfg.effective_threads(), 2);
        std::env::set_var("PCKPT_THREADS", "not-a-number");
        assert!(cfg.effective_threads() >= 1, "garbage falls back to cores");
        std::env::remove_var("PCKPT_THREADS");
        let mut pinned = cfg;
        pinned.threads = 7;
        std::env::set_var("PCKPT_THREADS", "2");
        assert_eq!(pinned.effective_threads(), 5, "explicit threads win (clamped to runs)");
        std::env::remove_var("PCKPT_THREADS");
    }

    #[test]
    fn matches_serial_fresh_build_reference() {
        // The arena + work-stealing scheduler must reproduce the
        // pre-refactor semantics bit-for-bit: run i draws from
        // master.split(i), the trace is generated first, and every model
        // runs against a fresh clone with bg stream split(0xB6).
        let leads = LeadTimeModel::desh_default();
        let base = app_params(ModelKind::B, "XGC");
        let models = [ModelKind::B, ModelKind::P2];
        let cfg = RunnerConfig {
            runs: 12,
            base_seed: 41,
            threads: 3,
        };
        let campaign = run_models(&base, &models, &leads, &cfg);

        let master = SimRng::seed_from(cfg.base_seed);
        let tcfg = trace_config(&base);
        let mut reference: Vec<Aggregate> = models.iter().map(|_| Aggregate::new()).collect();
        for run in 0..cfg.runs {
            let mut rng = master.split(run as u64);
            let trace = FailureTrace::generate(&tcfg, &leads, &base.predictor, &mut rng);
            let bg_rng = rng.split(0xB6);
            for (m, &model) in models.iter().enumerate() {
                let mut p = base.clone();
                p.model = model;
                let result = CrSim::new(p, trace.clone(), &leads)
                    .with_bg_rng(bg_rng.clone())
                    .run();
                reference[m].push(&result);
            }
        }
        for (agg, reference) in campaign.aggregates.iter().zip(&reference) {
            assert_eq!(agg.runs(), reference.runs());
            assert_eq!(
                agg.total_hours.mean().to_bits(),
                reference.total_hours.mean().to_bits(),
                "campaign diverged from the serial fresh-build reference"
            );
            assert_eq!(
                agg.ft_ratio_pooled().to_bits(),
                reference.ft_ratio_pooled().to_bits()
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let leads = LeadTimeModel::desh_default();
        let a = run_many(
            &app_params(ModelKind::B, "XGC"),
            &leads,
            &RunnerConfig::new(5, 1),
        );
        let b = run_many(
            &app_params(ModelKind::B, "XGC"),
            &leads,
            &RunnerConfig::new(5, 2),
        );
        assert!(
            (a.failures.mean() - b.failures.mean()).abs() > 0.0
                || (a.total_hours.mean() - b.total_hours.mean()).abs() > 1e-12
        );
    }
}

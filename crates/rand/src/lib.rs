//! Offline compatibility shim for the subset of the `rand` 0.8 API used
//! by this workspace.
//!
//! The build environment has no access to crates.io, so the real `rand`
//! crate cannot be fetched. This path crate shadows it with the handful
//! of traits the workspace actually uses: [`RngCore`], [`SeedableRng`],
//! and the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`,
//! `fill`). The algorithms live in `pckpt-simrng`; this crate is pure
//! trait plumbing with no generator of its own, so swapping the real
//! `rand` back in (when a registry is available) is a one-line
//! `Cargo.toml` change.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type carried by [`RngCore::try_fill_bytes`]. Infallible for
/// every generator in this workspace; exists for signature parity.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core trait every generator implements (rand 0.8 shape).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Constructing a generator from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Convenience: expands a `u64` into the seed bytes (little-endian,
    /// repeated) and builds the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = state.to_le_bytes();
        for (i, b) in seed.as_mut().iter_mut().enumerate() {
            *b = bytes[i % 8];
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a generator's raw output
/// (the `Standard` distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Canonical 53-bit mapping into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = sample_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = sample_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on an empty range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Unbiased draw below `n` (Lemire's multiply-shift with rejection),
/// generalized to u128 spans so i64/u64 full ranges work.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, n: u128) -> u128 {
    debug_assert!(n > 0);
    if n == 1 {
        return 0;
    }
    // All workspace spans fit in u64; keep the fast path there.
    if n <= u64::MAX as u128 {
        let n = n as u64;
        let mut x = rng.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = rng.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        m >> 64
    } else {
        // Span wider than u64 (e.g. the full i128 conversion of
        // u64::MAX..=u64::MAX ranges): rejection-sample 128-bit words.
        loop {
            let hi = rng.next_u64() as u128;
            let lo = rng.next_u64() as u128;
            let v = (hi << 64) | lo;
            // Rejection zone keeps the draw unbiased.
            let zone = u128::MAX - (u128::MAX % n);
            if v < zone {
                return v % n;
            }
        }
    }
}

/// Convenience extension trait (rand 0.8's `Rng`), blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::prelude` parity.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter "generator" good enough to exercise the trait plumbing.
    struct Seq(u64);

    impl RngCore for Seq {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so range sampling sees well-mixed bits.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Seq(1);
        for _ in 0..1000 {
            let a: u64 = rng.gen_range(5..17);
            assert!((5..17).contains(&a));
            let b: i64 = rng.gen_range(-10..=10);
            assert!((-10..=10).contains(&b));
            let c: f64 = rng.gen_range(0.0..10.0);
            assert!((0.0..10.0).contains(&c));
            let d: usize = rng.gen_range(0..1);
            assert_eq!(d, 0);
        }
    }

    #[test]
    fn standard_draws_cover_types() {
        let mut rng = Seq(2);
        let _: u64 = rng.gen();
        let _: u32 = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        let mut both = [false, false];
        for _ in 0..64 {
            both[rng.gen::<bool>() as usize] = true;
        }
        assert!(both[0] && both[1]);
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let mut rng = Seq(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! Property-based tests of the statistics and distribution layer.

use proptest::prelude::*;

use pckpt_simrng::dist::gamma_fn;
use pckpt_simrng::{
    BoxPlot, Discrete, Distribution, Empirical, Exponential, LogNormal, Quantiles, SimRng,
    Summary, TruncatedNormal, Uniform, Weibull,
};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 1..=max_len)
}

proptest! {
    /// Welford summaries agree with naive two-pass computation.
    #[test]
    fn summary_matches_naive(values in finite_vec(200)) {
        let s = Summary::from_slice(&values);
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        if values.len() > 1 {
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((s.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
        }
        prop_assert_eq!(s.min(), values.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), values.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging any split of a sequence reproduces the sequential summary.
    #[test]
    fn summary_merge_is_split_invariant(values in finite_vec(200), split in 0usize..200) {
        let split = split.min(values.len());
        let seq = Summary::from_slice(&values);
        let mut a = Summary::from_slice(&values[..split]);
        let b = Summary::from_slice(&values[split..]);
        a.merge(&b);
        prop_assert_eq!(a.count(), seq.count());
        prop_assert!((a.mean() - seq.mean()).abs() <= 1e-6 * (1.0 + seq.mean().abs()));
        prop_assert!((a.variance() - seq.variance()).abs() <= 1e-4 * (1.0 + seq.variance()));
    }

    /// Quantiles are monotone in q and bounded by the extremes.
    #[test]
    fn quantiles_monotone(values in finite_vec(100), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let q = Quantiles::new(&values);
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        prop_assert!(q.quantile(lo) <= q.quantile(hi) + 1e-12);
        prop_assert!(q.quantile(0.0) <= q.quantile(lo));
        prop_assert!(q.quantile(hi) <= q.quantile(1.0));
    }

    /// Box-plot invariants. Note: with interpolated quantiles and tiny
    /// samples, a whisker can land *inside* the box (q3 above the largest
    /// non-outlier), so the orderings asserted here are only the ones
    /// that hold universally: quartile ordering, whisker ordering,
    /// whiskers drawn at actual observations inside the fences, outliers
    /// strictly outside them.
    #[test]
    fn boxplot_invariants(values in finite_vec(100)) {
        let b = BoxPlot::new(&values);
        prop_assert!(b.q1 <= b.median + 1e-12);
        prop_assert!(b.median <= b.q3 + 1e-12);
        prop_assert!(b.whisker_lo <= b.whisker_hi + 1e-12);
        let lo_fence = b.q1 - 1.5 * b.iqr();
        let hi_fence = b.q3 + 1.5 * b.iqr();
        let eps = 1e-9 * (1.0 + b.iqr().abs() + b.median.abs());
        prop_assert!(b.whisker_lo >= lo_fence - eps);
        prop_assert!(b.whisker_hi <= hi_fence + eps);
        // Whiskers are actual observations.
        prop_assert!(values.iter().any(|&v| (v - b.whisker_lo).abs() < 1e-9));
        prop_assert!(values.iter().any(|&v| (v - b.whisker_hi).abs() < 1e-9));
        for &o in &b.outliers {
            prop_assert!(o < lo_fence + eps || o > hi_fence - eps);
        }
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(b.mean >= lo - 1e-9 && b.mean <= hi + 1e-9);
        prop_assert!(b.outliers.len() < values.len().max(1));
    }

    /// Weibull CDF/survival form a valid pair and sampling stays positive.
    #[test]
    fn weibull_cdf_survival(shape in 0.2f64..5.0, scale in 0.01f64..1e4, t in 0.0f64..1e5, seed in any::<u64>()) {
        let w = Weibull::new(shape, scale);
        prop_assert!((w.cdf(t) + w.survival(t) - 1.0).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&w.cdf(t)));
        let mut rng = SimRng::seed_from(seed);
        prop_assert!(w.sample(&mut rng) > 0.0);
    }

    /// Min-stability rate scaling: shape preserved, survival ordering —
    /// a subsystem (factor < 1) survives longer at any t.
    #[test]
    fn weibull_rate_scaling_orders_survival(
        shape in 0.3f64..3.0,
        scale in 0.1f64..100.0,
        factor in 0.01f64..1.0,
        t in 0.01f64..1e3,
    ) {
        let sys = Weibull::new(shape, scale);
        let sub = sys.rate_scaled(factor);
        prop_assert_eq!(sub.shape, sys.shape);
        prop_assert!(sub.survival(t) >= sys.survival(t) - 1e-12);
    }

    /// Gamma function: recurrence Γ(x+1) = x·Γ(x).
    #[test]
    fn gamma_recurrence(x in 0.05f64..20.0) {
        let lhs = gamma_fn(x + 1.0);
        let rhs = x * gamma_fn(x);
        prop_assert!((lhs - rhs).abs() <= 1e-8 * rhs.abs().max(1.0));
    }

    /// Samplers stay within their supports.
    #[test]
    fn support_bounds(seed in any::<u64>(), lo in -100.0f64..100.0, width in 0.1f64..100.0) {
        let mut rng = SimRng::seed_from(seed);
        let u = Uniform::new(lo, lo + width);
        for _ in 0..100 {
            let x = u.sample(&mut rng);
            prop_assert!(x >= lo && x < lo + width);
        }
        let e = Exponential::new(width);
        prop_assert!(e.sample(&mut rng) >= 0.0);
        let ln = LogNormal::new(0.0, 1.0);
        prop_assert!(ln.sample(&mut rng) > 0.0);
        let tn = TruncatedNormal::new(lo, width, lo);
        prop_assert!(tn.sample(&mut rng) >= lo);
    }

    /// Discrete never selects a zero-weight category.
    #[test]
    fn discrete_zero_weights_never_drawn(
        weights in proptest::collection::vec(0.0f64..10.0, 2..20),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let d = Discrete::new(&weights);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..200 {
            let idx = d.sample_index(&mut rng);
            prop_assert!(weights[idx] > 0.0, "drew zero-weight index {idx}");
        }
    }

    /// Empirical quantile/survival are mutually consistent.
    #[test]
    fn empirical_consistency(values in finite_vec(100), q in 0.0f64..1.0) {
        let e = Empirical::new(values.clone());
        let x = e.quantile(q);
        let lo = e.quantile(0.0);
        let hi = e.quantile(1.0);
        prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-9);
        prop_assert!((0.0..=1.0).contains(&e.survival(x)));
        prop_assert_eq!(e.survival(hi), 0.0);
    }

    /// Split streams are deterministic functions of (seed, index).
    #[test]
    fn split_streams_reproducible(seed in any::<u64>(), index in 0u64..1000) {
        let m1 = SimRng::seed_from(seed);
        let m2 = SimRng::seed_from(seed);
        let mut a = m1.split(index);
        let mut b = m2.split(index);
        for _ in 0..16 {
            prop_assert_eq!(a.next_raw(), b.next_raw());
        }
    }
}

//! Random variates and statistics for the p-ckpt simulation suite.
//!
//! The paper's simulation (Sec. III) draws failure inter-arrival times from
//! Weibull distributions (Table III), failure lead times from an empirical
//! mixture recovered from log analysis (Fig. 2a), and averages results over
//! 1000 runs. This crate provides:
//!
//! * [`rng`] — a deterministic, splittable PRNG ([`rng::SimRng`]) so that
//!   every simulation run is exactly reproducible from a seed, and so that
//!   parallel runs derive independent streams.
//! * [`dist`] — analytic distributions (Weibull, exponential, normal,
//!   log-normal, truncated normal, uniform) sampled by inversion or
//!   Box–Muller, plus composable [`dist::Mixture`] and data-driven
//!   [`dist::Empirical`] distributions.
//! * [`stats`] — streaming summaries (Welford), quantiles, histograms and
//!   box-plot statistics used to render the paper's figures.
//!
//! `rand_distr` is deliberately not used (it is not on the approved offline
//! dependency list); the implementations here are small, and every sampler
//! is validated against analytic moments in its unit tests.

#![warn(missing_docs)]

pub mod dist;
pub mod fit;
pub mod rng;
pub mod stats;

pub use dist::{
    norm_inv_cdf, normal_cdf, Deterministic, Discrete, Distribution, Empirical, Exponential,
    LogNormal, Mixture, Normal, TruncatedNormal, Uniform, Weibull,
};
pub use fit::{fit_weibull, WeibullFit};
pub use rng::SimRng;
pub use stats::{
    ks_one_sample, ks_two_sample, t_critical, BoxPlot, Histogram, KsResult, PairedSummary,
    Quantiles, StratifiedSummary, Summary,
};

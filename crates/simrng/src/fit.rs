//! Distribution fitting.
//!
//! The paper takes its Weibull parameters from published fits of
//! production failure logs (Table III). This module closes the loop: it
//! fits Weibull parameters back out of observed inter-arrival samples by
//! maximum likelihood, so generated traces can be validated against
//! their source distribution and users can fit their *own* machines'
//! logs for use with the C/R models.

use crate::dist::Weibull;

/// Result of a Weibull maximum-likelihood fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeibullFit {
    /// Fitted shape parameter k.
    pub shape: f64,
    /// Fitted scale parameter λ.
    pub scale: f64,
    /// Newton iterations used.
    pub iterations: u32,
}

impl WeibullFit {
    /// The fitted distribution.
    pub fn distribution(&self) -> Weibull {
        Weibull::new(self.shape, self.scale)
    }
}

/// Fits a Weibull distribution to positive samples by maximum likelihood.
///
/// The shape equation `Σxᵏln x / Σxᵏ − 1/k − mean(ln x) = 0` is solved by
/// Newton's method with a bisection fallback; the scale then follows in
/// closed form. Returns `None` when the samples cannot identify a shape
/// (fewer than 3 points, or all samples equal).
pub fn fit_weibull(samples: &[f64]) -> Option<WeibullFit> {
    if samples.len() < 3 {
        return None;
    }
    assert!(
        samples.iter().all(|&x| x > 0.0 && x.is_finite()),
        "Weibull samples must be positive and finite"
    );
    let n = samples.len() as f64;
    let mean_ln: f64 = samples.iter().map(|x| x.ln()).sum::<f64>() / n;
    let spread = samples
        .iter()
        .map(|x| (x.ln() - mean_ln).abs())
        .fold(0.0f64, f64::max);
    if spread < 1e-12 {
        return None; // degenerate: all samples identical
    }

    // g(k) = Σ xᵏ ln x / Σ xᵏ − 1/k − mean_ln; strictly increasing in k.
    let g = |k: f64| -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for &x in samples {
            let xk = x.powf(k);
            num += xk * x.ln();
            den += xk;
        }
        num / den - 1.0 / k - mean_ln
    };

    // Bracket the root: g(k→0⁺) → −∞, g(k→∞) → max ln x − mean_ln > 0.
    let mut lo = 1e-3;
    let mut hi = 1.0;
    let mut guard = 0;
    while g(hi) < 0.0 {
        hi *= 2.0;
        guard += 1;
        if guard > 60 {
            return None;
        }
    }
    while g(lo) > 0.0 {
        lo /= 2.0;
        guard += 1;
        if guard > 120 {
            return None;
        }
    }

    // Newton from the midpoint, clamped to the bracket; bisection keeps
    // it globally convergent.
    let mut k = 0.5 * (lo + hi);
    let mut iterations = 0;
    for _ in 0..200 {
        iterations += 1;
        let gk = g(k);
        if gk.abs() < 1e-10 {
            break;
        }
        if gk > 0.0 {
            hi = k;
        } else {
            lo = k;
        }
        // Numeric derivative for the Newton step.
        let h = (k * 1e-6).max(1e-9);
        let dg = (g(k + h) - gk) / h;
        let newton = k - gk / dg;
        k = if newton.is_finite() && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
        if hi - lo < 1e-12 {
            break;
        }
    }
    let scale = (samples.iter().map(|x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
    if !(k.is_finite() && scale.is_finite() && k > 0.0 && scale > 0.0) {
        return None;
    }
    Some(WeibullFit {
        shape: k,
        scale,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::rng::SimRng;

    fn roundtrip(shape: f64, scale: f64, n: usize, tol: f64) {
        let w = Weibull::new(shape, scale);
        let mut rng = SimRng::seed_from(0xF17);
        let samples = w.sample_n(&mut rng, n);
        let fit = fit_weibull(&samples).expect("fit converges");
        assert!(
            (fit.shape - shape).abs() / shape < tol,
            "shape {shape}: fitted {}",
            fit.shape
        );
        assert!(
            (fit.scale - scale).abs() / scale < tol,
            "scale {scale}: fitted {}",
            fit.scale
        );
    }

    #[test]
    fn recovers_table_iii_parameters() {
        // The paper's three systems (Table III).
        roundtrip(0.7111, 67.375, 20_000, 0.03);
        roundtrip(0.8170, 6.6293, 20_000, 0.03);
        roundtrip(0.6885, 5.4527, 20_000, 0.03);
    }

    #[test]
    fn recovers_exponential_and_peaked_shapes() {
        roundtrip(1.0, 10.0, 20_000, 0.03); // exponential special case
        roundtrip(2.5, 3.0, 20_000, 0.03); // peaked (wear-out-like)
    }

    #[test]
    fn small_samples_fit_loosely() {
        let w = Weibull::new(0.7, 5.0);
        let mut rng = SimRng::seed_from(9);
        let samples = w.sample_n(&mut rng, 200);
        let fit = fit_weibull(&samples).unwrap();
        assert!((fit.shape - 0.7).abs() < 0.15, "shape {}", fit.shape);
        assert!(fit.distribution().mean().unwrap() > 0.0);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(fit_weibull(&[]).is_none());
        assert!(fit_weibull(&[1.0, 2.0]).is_none());
        assert!(fit_weibull(&[3.0, 3.0, 3.0, 3.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_samples_panic() {
        let _ = fit_weibull(&[1.0, -2.0, 3.0]);
    }
}

//! Analytic and empirical probability distributions.
//!
//! Everything the simulation draws — Weibull failure inter-arrivals
//! (Table III of the paper), truncated-normal per-sequence lead times
//! (Fig. 2a), uniform node selection — goes through the [`Distribution`]
//! trait so that models can be parameterized over distribution families
//! (e.g. the robustness experiments of Observation 7 swap the failure
//! distribution without touching the C/R models).

use crate::rng::SimRng;

/// A real-valued distribution sampled with a [`SimRng`].
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The distribution's mean, if it exists in closed form.
    ///
    /// Used for analytic cross-checks (e.g. deriving the failure rate λ for
    /// Young's formula from a Weibull's mean inter-arrival time).
    fn mean(&self) -> Option<f64> {
        None
    }

    /// Draws `n` samples into a fresh vector.
    fn sample_n(&self, rng: &mut SimRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Lanczos approximation of the gamma function Γ(x) for x > 0.
///
/// Needed for Weibull moments: `E[X] = scale · Γ(1 + 1/shape)`. Accurate to
/// ~1e-13 over the range used here (validated in tests against known
/// values).
pub fn gamma_fn(x: f64) -> f64 {
    assert!(x > 0.0, "gamma_fn requires x > 0, got {x}");
    // g = 7, n = 9 Lanczos coefficients.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Weibull distribution with the (shape, scale) parameterization of
/// Table III in the paper.
///
/// Sampled by inversion: `scale · (−ln U)^(1/shape)`.
///
/// ```
/// use pckpt_simrng::{Distribution, SimRng, Weibull};
///
/// // OLCF Titan's system-wide failure process (Table III): mean time
/// // between failures ≈ 7 hours.
/// let titan = Weibull::new(0.6885, 5.4527);
/// assert!((titan.mean().unwrap() - 7.0).abs() < 0.1);
/// let mut rng = SimRng::seed_from(42);
/// assert!(titan.sample(&mut rng) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    /// Shape parameter k (k < 1 ⇒ infant-mortality-style burstiness, as on
    /// all three systems in Table III).
    pub shape: f64,
    /// Scale parameter λ (same unit as the samples, hours in the paper).
    pub scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution. Panics if either parameter is not
    /// strictly positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && scale > 0.0, "Weibull parameters must be > 0");
        Self { shape, scale }
    }

    /// Survival function `P(X > t)`.
    pub fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else {
            (-(t / self.scale).powf(self.shape)).exp()
        }
    }

    /// Cumulative distribution function `P(X ≤ t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        1.0 - self.survival(t)
    }

    /// Projects this distribution onto a subsystem carrying `factor` of the
    /// failure sources, using Weibull min-stability.
    ///
    /// If the system-wide time-between-failures is Weibull(k, λ) for `N`
    /// i.i.d. nodes, each node's is Weibull(k, λ·N^(1/k)) (the minimum of
    /// `n` i.i.d. Weibulls is Weibull with scale divided by n^(1/k)), and a
    /// job spanning `c` nodes sees Weibull(k, λ·(N/c)^(1/k)). Pass
    /// `factor = c/N`. The mean inter-arrival therefore grows by
    /// `(N/c)^(1/k)`, *not* by `N/c` — shape < 1 makes small jobs suffer
    /// relatively more early failures than naive rate thinning predicts.
    pub fn rate_scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "rate factor must be > 0");
        Self {
            shape: self.shape,
            scale: self.scale / factor.powf(1.0 / self.shape),
        }
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.uniform01_open();
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> Option<f64> {
        Some(self.scale * gamma_fn(1.0 + 1.0 / self.shape))
    }
}

/// Exponential distribution with the given mean (inverse rate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Mean of the distribution (1/λ).
    pub mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with mean `mean` (> 0).
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0, "Exponential mean must be > 0");
        Self { mean }
    }

    /// Creates an exponential distribution with rate `rate` (> 0).
    pub fn from_rate(rate: f64) -> Self {
        Self::new(1.0 / rate)
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        -self.mean * rng.uniform01_open().ln()
    }

    fn mean(&self) -> Option<f64> {
        Some(self.mean)
    }
}

/// Normal distribution sampled with the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean μ.
    pub mu: f64,
    /// Standard deviation σ (> 0).
    pub sigma: f64,
}

impl Normal {
    /// Creates a normal distribution. Panics if `sigma <= 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "Normal sigma must be > 0");
        Self { mu, sigma }
    }

    /// Draws a standard-normal variate.
    ///
    /// Box–Muller by default (two uniforms; the historical transform every
    /// fixed-run digest depends on). When the stream has
    /// [`SimRng::set_inverse_normals`] set — the antithetic
    /// variance-reduction mode — it switches to the single-uniform inverse
    /// CDF `Φ⁻¹(u)`: Box–Muller's `cos(2πu₂)` is even around `u₂ = ½`, so
    /// reflecting the uniforms would leave the deviate's magnitude
    /// structure intact instead of negating it, defeating the pairing.
    /// `Φ⁻¹(1 − u) = −Φ⁻¹(u)` exactly.
    pub fn standard(rng: &mut SimRng) -> f64 {
        if rng.inverse_normals() {
            return norm_inv_cdf(rng.uniform01_open());
        }
        // Box–Muller; we use only one of the pair for simplicity — the
        // samplers here are nowhere near the simulation's critical path.
        let u1 = rng.uniform01_open();
        let u2 = rng.uniform01();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Standard-normal CDF `Φ(z)` via the Abramowitz–Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7).
pub fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * ax);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = 1.0 - poly * (-ax * ax).exp();
    let signed = if x >= 0.0 { erf } else { -erf };
    0.5 * (1.0 + signed)
}

/// Standard-normal inverse CDF `Φ⁻¹(p)` (Acklam's rational approximation,
/// |relative error| < 1.15e-9 over `(0, 1)`).
///
/// This is the transform behind the antithetic normal path: it is oddly
/// symmetric, `Φ⁻¹(1 − p) = −Φ⁻¹(p)`, so reflecting the driving uniform
/// negates the deviate exactly. Returns ±∞ at the endpoints.
pub fn norm_inv_cdf(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "norm_inv_cdf domain is [0, 1]");
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p > 1.0 - P_LOW {
        // Tail symmetry keeps the two tails bit-exact mirrors of each
        // other, which the antithetic pairing tests rely on.
        -norm_inv_cdf(1.0 - p)
    } else {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.mu + self.sigma * Self::standard(rng)
    }

    fn mean(&self) -> Option<f64> {
        Some(self.mu)
    }
}

/// Log-normal distribution: `exp(Normal(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal (log-scale location).
    pub mu: f64,
    /// Standard deviation of the underlying normal (> 0).
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution. Panics if `sigma <= 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "LogNormal sigma must be > 0");
        Self { mu, sigma }
    }

    /// Constructs the log-normal that has the given *linear-scale* mean and
    /// coefficient of variation.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0 && cv > 0.0);
        let sigma2 = (1.0 + cv * cv).ln();
        Self {
            mu: mean.ln() - sigma2 / 2.0,
            sigma: sigma2.sqrt(),
        }
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * Normal::standard(rng)).exp()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.mu + self.sigma * self.sigma / 2.0).exp())
    }
}

/// Normal distribution truncated to `[lo, ∞)` by rejection.
///
/// Used for the per-failure-sequence lead-time distributions (Fig. 2a):
/// lead times are concentrated around their sequence mean with light tails
/// ("most failures are bounded by the whiskers") and are never negative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    inner: Normal,
    lo: f64,
}

impl TruncatedNormal {
    /// Creates a normal(mu, sigma) truncated below at `lo`.
    ///
    /// Panics if the untruncated mass above `lo` would be vanishingly small
    /// (mu more than 8σ below lo), which would make rejection sampling
    /// pathological.
    pub fn new(mu: f64, sigma: f64, lo: f64) -> Self {
        assert!(
            mu - lo > -8.0 * sigma,
            "truncation point {lo} is too far above mean {mu}"
        );
        Self {
            inner: Normal::new(mu, sigma),
            lo,
        }
    }

    /// Lower truncation bound.
    pub fn lower_bound(&self) -> f64 {
        self.lo
    }

    /// Location parameter of the untruncated normal.
    pub fn mu(&self) -> f64 {
        self.inner.mu
    }

    /// Scale parameter of the untruncated normal.
    pub fn sigma(&self) -> f64 {
        self.inner.sigma
    }
}

impl Distribution for TruncatedNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        loop {
            let x = self.inner.sample(rng);
            if x >= self.lo {
                return x;
            }
        }
    }
    // mean() intentionally omitted: the truncated mean involves the normal
    // CDF and is not needed anywhere; tests use sample means instead.
}

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`. Panics if `hi <= lo`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(hi > lo, "Uniform requires hi > lo");
        Self { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.uniform01()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.lo + self.hi) / 2.0)
    }
}

/// Point mass: always returns the same value.
///
/// Handy for ablations that replace a stochastic input with its mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    /// The constant value returned by every draw.
    pub value: f64,
}

impl Deterministic {
    /// Creates a point-mass distribution at `value`.
    pub fn new(value: f64) -> Self {
        Self { value }
    }
}

impl Distribution for Deterministic {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.value
    }

    fn mean(&self) -> Option<f64> {
        Some(self.value)
    }
}

/// Weighted discrete choice over indices `0..weights.len()`.
///
/// Sampling is O(log n) via a cumulative-weight table.
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    cumulative: Vec<f64>,
}

impl Discrete {
    /// Builds a discrete distribution from non-negative weights (not
    /// necessarily normalized). Panics if no weight is positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "Discrete requires at least one weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and >= 0");
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "at least one weight must be positive");
        Self { cumulative }
    }

    /// Draws an index in `0..len` with probability proportional to its
    /// weight.
    pub fn sample_index(&self, rng: &mut SimRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.uniform01() * total;
        // partition_point returns the first index whose cumulative weight
        // exceeds x; zero-weight entries can never be selected because their
        // cumulative value equals their predecessor's.
        self.cumulative.partition_point(|&c| c <= x).min(self.cumulative.len() - 1)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if there are no categories (never the case post-construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Mixture of component distributions with given weights.
///
/// The Fig. 2a lead-time model is a mixture of ten truncated normals, one
/// per failure-chain sequence, weighted by the sequences' occurrence
/// counts.
pub struct Mixture {
    components: Vec<Box<dyn Distribution + Send + Sync>>,
    weights: Vec<f64>,
    selector: Discrete,
}

impl Mixture {
    /// Builds a mixture. Panics if `components` and `weights` differ in
    /// length or the weights are all zero.
    pub fn new(components: Vec<Box<dyn Distribution + Send + Sync>>, weights: Vec<f64>) -> Self {
        assert_eq!(
            components.len(),
            weights.len(),
            "one weight per component required"
        );
        let selector = Discrete::new(&weights);
        Self {
            components,
            weights,
            selector,
        }
    }

    /// Number of mixture components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if the mixture has no components (never post-construction).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Draws `(component index, sample)` — callers that need to attribute a
    /// sample to its generating component (e.g. tagging a failure with its
    /// chain sequence) use this instead of [`Distribution::sample`].
    pub fn sample_tagged(&self, rng: &mut SimRng) -> (usize, f64) {
        let idx = self.selector.sample_index(rng);
        (idx, self.components[idx].sample(rng))
    }
}

impl Distribution for Mixture {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_tagged(rng).1
    }

    fn mean(&self) -> Option<f64> {
        let total: f64 = self.weights.iter().sum();
        let mut acc = 0.0;
        for (c, &w) in self.components.iter().zip(&self.weights) {
            acc += w * c.mean()?;
        }
        Some(acc / total)
    }
}

/// Empirical distribution backed by observed samples.
///
/// Sampling draws uniformly with linear interpolation between order
/// statistics (a continuous approximation of the ECDF). This is how the
/// failure-chain analyzer's recovered lead times are re-injected into the
/// simulation, mirroring the paper's "we consider the actual lead time of
/// any failure during simulation".
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    sorted: Vec<f64>,
}

impl Empirical {
    /// Builds an empirical distribution from samples. Panics if `samples`
    /// is empty or contains non-finite values.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "Empirical requires at least one sample");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "samples must be finite"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self { sorted: samples }
    }

    /// Fraction of probability mass strictly above `t` (empirical survival
    /// function).
    pub fn survival(&self, t: f64) -> f64 {
        let below_or_eq = self.sorted.partition_point(|&x| x <= t);
        1.0 - below_or_eq as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile via linear interpolation, `q ∈ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile requires q in [0,1]");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        if i + 1 < n {
            self.sorted[i] * (1.0 - frac) + self.sorted[i + 1] * frac
        } else {
            self.sorted[n - 1]
        }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples (never the case post-construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Read-only view of the sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

impl Distribution for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.quantile(rng.uniform01())
    }

    fn mean(&self) -> Option<f64> {
        Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(0xDEC0DE)
    }

    fn sample_mean(dist: &impl Distribution, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| dist.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-12);
        assert!((gamma_fn(2.0) - 1.0).abs() < 1e-12);
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-9);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
        // Γ(1.5) = √π/2
        assert!((gamma_fn(1.5) - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-10);
    }

    #[test]
    fn weibull_mean_matches_analytic() {
        // Titan parameters from Table III.
        let w = Weibull::new(0.6885, 5.4527);
        let analytic = w.mean().unwrap();
        let empirical = sample_mean(&w, 200_000);
        assert!(
            (empirical - analytic).abs() / analytic < 0.02,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn weibull_survival_consistency() {
        let w = Weibull::new(0.8, 10.0);
        let mut r = rng();
        let n = 100_000;
        let t = 12.0;
        let above = (0..n).filter(|_| w.sample(&mut r) > t).count() as f64 / n as f64;
        assert!((above - w.survival(t)).abs() < 0.01);
        assert!((w.cdf(t) + w.survival(t) - 1.0).abs() < 1e-12);
        assert_eq!(w.survival(0.0), 1.0);
        assert_eq!(w.survival(-5.0), 1.0);
    }

    #[test]
    fn weibull_rate_scaling_scales_mean_inversely() {
        let sys = Weibull::new(0.6885, 5.4527);
        // A job on 2272 of 18868 nodes: min-stability gives scale (and
        // hence mean) scaled by (N/c)^(1/shape).
        let job = sys.rate_scaled(2272.0 / 18868.0);
        let ratio = job.mean().unwrap() / sys.mean().unwrap();
        let expected = (18868.0f64 / 2272.0).powf(1.0 / 0.6885);
        assert!(
            (ratio - expected).abs() / expected < 1e-9,
            "mean must scale by (N/c)^(1/k) = {expected}, got ratio {ratio}"
        );
        assert_eq!(job.shape, sys.shape);
    }

    #[test]
    fn exponential_mean() {
        let e = Exponential::new(4.0);
        let m = sample_mean(&e, 200_000);
        assert!((m - 4.0).abs() < 0.05, "mean {m}");
        assert_eq!(Exponential::from_rate(0.25).mean, 4.0);
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 2.0);
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_mean_and_positivity() {
        let d = LogNormal::from_mean_cv(50.0, 0.5);
        let m = sample_mean(&d, 200_000);
        assert!((m - 50.0).abs() / 50.0 < 0.02, "mean {m}");
        let mut r = rng();
        assert!((0..10_000).all(|_| d.sample(&mut r) > 0.0));
    }

    #[test]
    fn truncated_normal_respects_bound() {
        let d = TruncatedNormal::new(5.0, 10.0, 1.0);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 1.0);
        }
        // With a bound far below the mean, behaves like the plain normal.
        let d2 = TruncatedNormal::new(100.0, 5.0, 0.0);
        let m = sample_mean(&d2, 100_000);
        assert!((m - 100.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    #[should_panic(expected = "too far above mean")]
    fn truncated_normal_rejects_pathological_truncation() {
        let _ = TruncatedNormal::new(0.0, 1.0, 100.0);
    }

    #[test]
    fn uniform_range_and_mean() {
        let d = Uniform::new(2.0, 6.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((2.0..6.0).contains(&x));
        }
        assert_eq!(d.mean(), Some(4.0));
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic::new(3.5);
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 3.5);
        assert_eq!(d.mean(), Some(3.5));
    }

    #[test]
    fn discrete_respects_weights() {
        let d = Discrete::new(&[1.0, 0.0, 3.0]);
        let mut r = rng();
        let n = 100_000;
        let mut counts = [0u32; 3];
        for _ in 0..n {
            counts[d.sample_index(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight category must never be drawn");
        let frac0 = counts[0] as f64 / n as f64;
        assert!((frac0 - 0.25).abs() < 0.01, "frac0 {frac0}");
    }

    #[test]
    fn mixture_mean_is_weighted_average() {
        let mix = Mixture::new(
            vec![
                Box::new(Deterministic::new(10.0)),
                Box::new(Deterministic::new(20.0)),
            ],
            vec![3.0, 1.0],
        );
        assert_eq!(mix.mean(), Some(12.5));
        let m = sample_mean(&mix, 100_000);
        assert!((m - 12.5).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn mixture_tagging_matches_component() {
        let mix = Mixture::new(
            vec![
                Box::new(Deterministic::new(1.0)),
                Box::new(Deterministic::new(2.0)),
            ],
            vec![1.0, 1.0],
        );
        let mut r = rng();
        for _ in 0..1000 {
            let (idx, x) = mix.sample_tagged(&mut r);
            assert_eq!(x, (idx + 1) as f64);
        }
    }

    #[test]
    fn empirical_quantiles_and_survival() {
        let e = Empirical::new(vec![4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 5.0);
        assert_eq!(e.quantile(0.5), 3.0);
        assert!((e.survival(3.0) - 0.4).abs() < 1e-12);
        assert_eq!(e.survival(0.0), 1.0);
        assert_eq!(e.survival(10.0), 0.0);
        assert_eq!(e.mean(), Some(3.0));
    }

    #[test]
    fn empirical_sampling_reproduces_distribution() {
        let base: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let e = Empirical::new(base);
        let m = sample_mean(&e, 200_000);
        assert!((m - 499.5).abs() < 3.0, "mean {m}");
    }

    #[test]
    fn empirical_single_sample() {
        let e = Empirical::new(vec![7.0]);
        let mut r = rng();
        assert_eq!(e.sample(&mut r), 7.0);
        assert_eq!(e.quantile(0.3), 7.0);
    }

    #[test]
    fn norm_inv_cdf_known_quantiles() {
        assert_eq!(norm_inv_cdf(0.5), 0.0);
        for (p, z) in [
            (0.975, 1.959_963_985),
            (0.95, 1.644_853_627),
            (0.995, 2.575_829_304),
            (0.841_344_746, 1.0),
            (0.1, -1.281_551_566),
            (0.001, -3.090_232_306),
        ] {
            let got = norm_inv_cdf(p);
            assert!((got - z).abs() < 1e-6, "Φ⁻¹({p}) = {got}, want {z}");
        }
        assert_eq!(norm_inv_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(norm_inv_cdf(1.0), f64::INFINITY);
    }

    #[test]
    fn norm_inv_cdf_is_oddly_symmetric_bitwise() {
        // Exact antisymmetry is what makes reflection negate deviates.
        // (p = 0.5 maps to ±0.0 — same value, different sign bit — so the
        // midpoint is skipped by the bitwise comparison.)
        for k in (1..512u64).filter(|&k| k != 256) {
            let p = k as f64 / 512.0;
            assert_eq!(
                norm_inv_cdf(1.0 - p).to_bits(),
                (-norm_inv_cdf(p)).to_bits(),
                "asymmetry at p = {p}"
            );
        }
    }

    #[test]
    fn norm_inv_cdf_roundtrips_through_normal_cdf() {
        for k in 1..100 {
            let p = k as f64 / 100.0;
            let back = normal_cdf(norm_inv_cdf(p));
            assert!((back - p).abs() < 2e-7, "Φ(Φ⁻¹({p})) = {back}");
        }
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-5);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-5);
    }

    #[test]
    fn inverse_normal_mode_matches_box_muller_distribution() {
        // Same marginal, different transform: compare moments.
        let mut bm = rng();
        let mut inv = rng();
        inv.set_inverse_normals(true);
        let n = 100_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        let (mut t1, mut t2) = (0.0, 0.0);
        for _ in 0..n {
            let a = Normal::standard(&mut bm);
            let b = Normal::standard(&mut inv);
            s1 += a;
            s2 += a * a;
            t1 += b;
            t2 += b * b;
        }
        let nf = n as f64;
        assert!((s1 / nf).abs() < 0.02 && (t1 / nf).abs() < 0.02);
        assert!((s2 / nf - 1.0).abs() < 0.03 && (t2 / nf - 1.0).abs() < 0.03);
    }

    #[test]
    fn reflected_inverse_normals_negate_exactly() {
        let mut a = rng();
        let mut b = rng();
        a.set_inverse_normals(true);
        b.set_inverse_normals(true);
        b.set_reflected(true);
        for _ in 0..1000 {
            let x = Normal::standard(&mut a);
            let y = Normal::standard(&mut b);
            assert_eq!(x.to_bits(), (-y).to_bits(), "{x} vs {y}");
        }
    }
}

//! Deterministic, splittable pseudo-random number generation.
//!
//! Simulation experiments must be exactly reproducible from a single seed,
//! and the parallel run driver must be able to hand each of the 1000
//! Monte-Carlo runs (Sec. V of the paper) an *independent* stream without
//! coordinating with the others. We implement:
//!
//! * [`SplitMix64`] — a tiny seeding generator, used to expand one `u64`
//!   seed into the 256-bit state of the main generator and to derive child
//!   seeds.
//! * [`SimRng`] — xoshiro256++, a fast, high-quality non-cryptographic
//!   generator. It implements [`rand::RngCore`] so the `rand` adaptor
//!   ecosystem works on top of it.
//!
//! Both algorithms are public-domain (Blackman & Vigna). We implement them
//! rather than rely on `rand`'s `StdRng` because `StdRng`'s algorithm is
//! explicitly *not* guaranteed stable across `rand` releases, which would
//! silently change every experiment in this repository.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 generator used for seed expansion and stream splitting.
///
/// Passes through every 64-bit state exactly once; consecutive outputs are
/// decorrelated enough to seed independent xoshiro instances (this is the
/// seeding procedure recommended by the xoshiro authors).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Deterministic xoshiro256++ generator with O(1) stream splitting.
///
/// ```
/// use pckpt_simrng::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator whose 256-bit state is expanded from `seed` via
    /// SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the one invalid xoshiro state; SplitMix64
        // cannot produce four consecutive zeros from any seed, but guard
        // anyway so the invariant is locally obvious.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Derives an independent child generator for logical stream `index`.
    ///
    /// Used by the parallel run driver: run *i* gets `master.split(i)` so
    /// that adding/removing runs never perturbs the streams of the others.
    pub fn split(&self, index: u64) -> Self {
        // Mix the child index into a seed derived from our own state. Two
        // SplitMix64 rounds decorrelate even adjacent indices.
        let mut sm = SplitMix64::new(
            self.s[0]
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add(index.wrapping_mul(0x9FB2_1C65_1E98_DF25)),
        );
        sm.next_u64();
        Self::seed_from(sm.next_u64())
    }

    /// Returns the next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        // Take the top 53 bits; (u >> 11) * 2^-53 is the canonical mapping.
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in the open interval `(0, 1)`, safe for `ln()`.
    #[inline]
    pub fn uniform01_open(&mut self) -> f64 {
        loop {
            let u = self.uniform01();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let mut x = self.next_raw();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_raw();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform01() < p
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::seed_from(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..1000 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let equal = (0..64).filter(|_| a.next_raw() == b.next_raw()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let master = SimRng::seed_from(99);
        let mut c0 = master.split(0);
        let mut c1 = master.split(1);
        let mut c0_again = master.split(0);
        assert_eq!(c0.next_raw(), c0_again.next_raw());
        let equal = (0..64).filter(|_| c0.next_raw() == c1.next_raw()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn uniform01_in_range_and_well_spread() {
        let mut rng = SimRng::seed_from(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.uniform01();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn below_is_unbiased_over_small_range() {
        let mut rng = SimRng::seed_from(11);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.below(7) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 7.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn below_handles_boundaries() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..100 {
            assert_eq!(rng.below(1), 0);
        }
        for _ in 0..100 {
            assert!(rng.below(u64::MAX) < u64::MAX);
        }
    }

    #[test]
    fn chance_edges() {
        let mut rng = SimRng::seed_from(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = SimRng::seed_from(13);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.chance(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac was {frac}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SimRng::seed_from(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn rngcore_adaptor_works_with_rand() {
        use rand::Rng;
        let mut rng = SimRng::seed_from(23);
        let x: f64 = rng.gen_range(0.0..10.0);
        assert!((0.0..10.0).contains(&x));
    }
}

//! Deterministic, splittable pseudo-random number generation.
//!
//! Simulation experiments must be exactly reproducible from a single seed,
//! and the parallel run driver must be able to hand each of the 1000
//! Monte-Carlo runs (Sec. V of the paper) an *independent* stream without
//! coordinating with the others. We implement:
//!
//! * [`SplitMix64`] — a tiny seeding generator, used to expand one `u64`
//!   seed into the 256-bit state of the main generator and to derive child
//!   seeds.
//! * [`SimRng`] — xoshiro256++, a fast, high-quality non-cryptographic
//!   generator. It implements [`rand::RngCore`] so the `rand` adaptor
//!   ecosystem works on top of it.
//!
//! Both algorithms are public-domain (Blackman & Vigna). We implement them
//! rather than rely on `rand`'s `StdRng` because `StdRng`'s algorithm is
//! explicitly *not* guaranteed stable across `rand` releases, which would
//! silently change every experiment in this repository.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 generator used for seed expansion and stream splitting.
///
/// Passes through every 64-bit state exactly once; consecutive outputs are
/// decorrelated enough to seed independent xoshiro instances (this is the
/// seeding procedure recommended by the xoshiro authors).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Variance-reduction draw transforms riding on a [`SimRng`] stream.
///
/// All default to *off*, in which case every draw method is bit-identical
/// to the plain generator — the fixed-run digests of the whole repository
/// depend on that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct VrState {
    /// Antithetic mirror: report `1 − u` for every uniform f64 draw.
    reflect: bool,
    /// Ask samplers to prefer single-uniform inverse-CDF transforms
    /// (so reflection negates normal deviates exactly).
    inv_cdf: bool,
    /// Stream belongs to an antithetic pair: generators should draw
    /// event attributes from per-event split substreams so conditional
    /// draw counts cannot desynchronize the pair (set on *both* members).
    paired: bool,
    /// One-shot stratum override for the *next* uniform f64 draw.
    stratum: u32,
    /// Stratum count; `0` means no stratum is armed.
    strata: u32,
}

/// Deterministic xoshiro256++ generator with O(1) stream splitting.
///
/// ```
/// use pckpt_simrng::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
    vr: VrState,
}

impl SimRng {
    /// Creates a generator whose 256-bit state is expanded from `seed` via
    /// SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the one invalid xoshiro state; SplitMix64
        // cannot produce four consecutive zeros from any seed, but guard
        // anyway so the invariant is locally obvious.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self {
            s,
            vr: VrState::default(),
        }
    }

    /// Derives an independent child generator for logical stream `index`.
    ///
    /// Used by the parallel run driver: run *i* gets `master.split(i)` so
    /// that adding/removing runs never perturbs the streams of the others.
    ///
    /// The antithetic flags ([`Self::set_reflected`],
    /// [`Self::set_inverse_normals`]) propagate to the child — a mirrored
    /// run's *entire* stream family (trace, background traffic) is
    /// mirrored. An armed one-shot stratum does not propagate; it belongs
    /// to exactly one draw of this stream.
    pub fn split(&self, index: u64) -> Self {
        // Mix the child index into a seed derived from our own state. Two
        // SplitMix64 rounds decorrelate even adjacent indices.
        let mut sm = SplitMix64::new(
            self.s[0]
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add(index.wrapping_mul(0x9FB2_1C65_1E98_DF25)),
        );
        sm.next_u64();
        let mut child = Self::seed_from(sm.next_u64());
        child.vr.reflect = self.vr.reflect;
        child.vr.inv_cdf = self.vr.inv_cdf;
        child.vr.paired = self.vr.paired;
        child
    }

    /// Turns antithetic reflection on or off: while on, every uniform f64
    /// draw reports `1 − u` instead of `u` (mapping `[0, 1)` onto
    /// `(0, 1]`), and every bounded integer draw ([`Self::below`]) reports
    /// the mirror `n − 1 − x`. Raw 64-bit draws ([`Self::next_raw`]) are
    /// unaffected, so a mirrored stream stays draw-for-draw synchronized
    /// with its partner.
    ///
    /// Mirroring `below` matters for variance: the thinning projection's
    /// job-membership test is `below(system_nodes) < job_nodes`, and with
    /// `job_nodes ≤ system_nodes / 2` the mirrored accept sets are
    /// disjoint — pair failure counts become anti- rather than
    /// positively correlated, which is what makes the paired estimator
    /// tighter than the crude one.
    pub fn set_reflected(&mut self, on: bool) {
        self.vr.reflect = on;
    }

    /// True if antithetic reflection is active.
    pub fn reflected(&self) -> bool {
        self.vr.reflect
    }

    /// Asks samplers to use single-uniform inverse-CDF transforms where a
    /// multi-uniform method (Box–Muller) would defeat reflection. Samplers
    /// query this via [`Self::inverse_normals`]; the flag changes nothing
    /// inside the generator itself.
    pub fn set_inverse_normals(&mut self, on: bool) {
        self.vr.inv_cdf = on;
    }

    /// True if samplers should prefer inverse-CDF transforms.
    pub fn inverse_normals(&self) -> bool {
        self.vr.inv_cdf
    }

    /// Marks this stream as a member of an antithetic pair (set on
    /// *both* members, reflected or not).
    ///
    /// Pair members share bit-identical generator states — only the
    /// output transforms differ — so they stay draw-for-draw aligned
    /// exactly as long as they consume the same *number* of draws. Any
    /// conditional draw block (an accepted failure sampling its lead
    /// time, a rejection loop whose length depends on a reflected value)
    /// breaks that alignment for the rest of the stream. While this flag
    /// is on, trace generators route such blocks through per-event
    /// [`Self::split`] substreams: the main stream's consumption becomes
    /// unconditional, mirroring survives the whole horizon, and the pair
    /// anti-correlation the estimator depends on is preserved. The flag
    /// propagates through `split` and changes nothing inside the
    /// generator itself.
    pub fn set_paired(&mut self, on: bool) {
        self.vr.paired = on;
    }

    /// True if this stream is a member of an antithetic pair.
    pub fn paired(&self) -> bool {
        self.vr.paired
    }

    /// True if a one-shot stratum is armed for the next uniform draw.
    ///
    /// Trace generators use this (together with [`Self::paired`]) to
    /// decide whether to take the variance-reduction generation path,
    /// which routes the run's dominant noise through its first uniform —
    /// the draw the armed stratum confines.
    pub fn stratum_armed(&self) -> bool {
        self.vr.strata > 0
    }

    /// Arms a one-shot stratum override: the next uniform f64 draw `u` is
    /// remapped to `(index + u) / count`, confining it to equal-probability
    /// stratum `index` of `count`, then the override clears itself.
    ///
    /// Reflection (if active) applies *before* the remap, so both members
    /// of an antithetic pair land in the same stratum.
    pub fn set_next_stratum(&mut self, index: u32, count: u32) {
        debug_assert!(count > 0 && index < count, "stratum {index} of {count}");
        self.vr.stratum = index;
        self.vr.strata = count;
    }

    /// Returns the next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision (`(0, 1]` while
    /// antithetic reflection is on, and remapped into the armed stratum if
    /// one is pending — see [`Self::set_next_stratum`]).
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        // Take the top 53 bits; (u >> 11) * 2^-53 is the canonical mapping.
        let mut u = (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if self.vr.reflect {
            u = 1.0 - u;
        }
        if self.vr.strata > 0 {
            u = (self.vr.stratum as f64 + u) / self.vr.strata as f64;
            self.vr.strata = 0;
            self.vr.stratum = 0;
        }
        u
    }

    /// Uniform draw in the open interval `(0, 1)`, safe for `ln()`.
    ///
    /// In the default state `uniform01` never returns 1.0 so the upper
    /// check is free; under reflection it can, hence both bounds.
    #[inline]
    pub fn uniform01_open(&mut self) -> f64 {
        loop {
            let u = self.uniform01();
            if u > 0.0 && u < 1.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, n)` (mirrored to `n − 1 − x` while
    /// antithetic reflection is on; see [`Self::set_reflected`]).
    ///
    /// Uses Lemire's multiply-shift rejection method (unbiased). The
    /// rejection loop depends only on the raw 64-bit values, so a
    /// mirrored stream consumes exactly as many raw draws as its
    /// partner — mirroring cannot desynchronize the pair.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let mut x = self.next_raw();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_raw();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        let v = (m >> 64) as u64;
        if self.vr.reflect {
            n - 1 - v
        } else {
            v
        }
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform01() < p
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::seed_from(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..1000 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let equal = (0..64).filter(|_| a.next_raw() == b.next_raw()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let master = SimRng::seed_from(99);
        let mut c0 = master.split(0);
        let mut c1 = master.split(1);
        let mut c0_again = master.split(0);
        assert_eq!(c0.next_raw(), c0_again.next_raw());
        let equal = (0..64).filter(|_| c0.next_raw() == c1.next_raw()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn uniform01_in_range_and_well_spread() {
        let mut rng = SimRng::seed_from(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.uniform01();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn below_is_unbiased_over_small_range() {
        let mut rng = SimRng::seed_from(11);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.below(7) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 7.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn below_handles_boundaries() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..100 {
            assert_eq!(rng.below(1), 0);
        }
        for _ in 0..100 {
            assert!(rng.below(u64::MAX) < u64::MAX);
        }
    }

    #[test]
    fn chance_edges() {
        let mut rng = SimRng::seed_from(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = SimRng::seed_from(13);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.chance(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac was {frac}");
    }

    #[test]
    fn reflection_mirrors_uniform_draws_exactly() {
        let mut plain = SimRng::seed_from(29);
        let mut mirror = SimRng::seed_from(29);
        mirror.set_reflected(true);
        for _ in 0..1000 {
            let u = plain.uniform01();
            let v = mirror.uniform01();
            assert_eq!(v.to_bits(), (1.0 - u).to_bits());
            assert!(v > 0.0 && v <= 1.0);
        }
    }

    #[test]
    fn reflection_mirrors_bounded_integer_draws() {
        let mut plain = SimRng::seed_from(31);
        let mut mirror = SimRng::seed_from(31);
        mirror.set_reflected(true);
        for _ in 0..1000 {
            assert_eq!(96 - plain.below(97), mirror.below(97));
        }
        // Raw 64-bit draws are the one escape hatch reflection never
        // touches, and both streams stay position-synchronized.
        assert_eq!(plain.next_raw(), mirror.next_raw());
        assert_eq!(plain.below(1), mirror.below(1));
    }

    #[test]
    fn stratum_is_one_shot_and_confines_the_draw() {
        let mut rng = SimRng::seed_from(37);
        for stratum in 0..8u32 {
            rng.set_next_stratum(stratum, 8);
            let u = rng.uniform01();
            let lo = stratum as f64 / 8.0;
            let hi = (stratum + 1) as f64 / 8.0;
            assert!(u >= lo && u < hi, "stratum {stratum}: {u}");
            // The very next draw is unconstrained again — same stream as a
            // plain generator that consumed the same number of raws.
            let _ = rng.uniform01();
        }
        let mut plain = SimRng::seed_from(37);
        for _ in 0..16 {
            plain.uniform01();
        }
        assert_eq!(rng, plain);
    }

    #[test]
    fn stratified_draws_stay_uniform_overall() {
        // Round-robin strata reassemble the uniform distribution.
        let mut rng = SimRng::seed_from(41);
        let n = 80_000usize;
        let mut sum = 0.0;
        for i in 0..n {
            rng.set_next_stratum((i % 8) as u32, 8);
            sum += rng.uniform01();
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean was {mean}");
    }

    #[test]
    fn split_propagates_antithetic_flags_but_not_stratum() {
        let mut parent = SimRng::seed_from(43);
        parent.set_reflected(true);
        parent.set_inverse_normals(true);
        parent.set_next_stratum(2, 4);
        let child = parent.split(7);
        assert!(child.reflected());
        assert!(child.inverse_normals());
        // The armed stratum stays with the parent's next draw.
        let mut plain_child = SimRng::seed_from(43).split(7);
        plain_child.set_reflected(true);
        plain_child.set_inverse_normals(true);
        assert_eq!(child, plain_child);
    }

    #[test]
    fn default_state_digest_is_unchanged() {
        // The exact stream every fixed-run digest in the repo depends on.
        let mut rng = SimRng::seed_from(61);
        let mut h = 0u64;
        for _ in 0..64 {
            h = h.rotate_left(7) ^ rng.uniform01().to_bits();
        }
        assert_eq!(h, 0x3fe7_6835_f768_d326, "plain uniform01 stream drifted");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SimRng::seed_from(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn rngcore_adaptor_works_with_rand() {
        use rand::Rng;
        let mut rng = SimRng::seed_from(23);
        let x: f64 = rng.gen_range(0.0..10.0);
        assert!((0.0..10.0).contains(&x));
    }
}

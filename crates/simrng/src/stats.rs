//! Streaming and batch statistics.
//!
//! The experiment harnesses aggregate 1000 Monte-Carlo runs per
//! configuration (Sec. V) and render box plots (Fig. 2a) and heat maps
//! (Fig. 2c). This module provides the numeric building blocks:
//! Welford-style streaming summaries, interpolated quantiles, fixed-bin
//! histograms and Tukey box-plot statistics.

/// Streaming summary: count, mean, variance (Welford), min, max.
///
/// Numerically stable for long accumulations; merging two summaries
/// (parallel reduction across worker threads) is supported via
/// [`Summary::merge`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice in one pass.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "Summary::push requires finite values");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (Chan's parallel algorithm).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean (0 when fewer than two observations).
    pub fn std_err(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Half-width of the two-sided Student-t confidence interval on the
    /// mean, i.e. `t_{n−1, confidence} · std_err`. Supported confidence
    /// levels are 0.90, 0.95 and 0.99 (see [`t_critical`]). Returns 0 for
    /// fewer than two observations.
    pub fn ci_half_width(&self, confidence: f64) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            t_critical(self.n - 1, confidence) * self.std_err()
        }
    }
}

/// Two-sided Student-t critical value for `df` degrees of freedom at the
/// given confidence level (0.90, 0.95 or 0.99).
///
/// Exact table entries for df ≤ 30, interpolated in `1/df` through the
/// 40/60/120 anchors beyond that, and the normal critical value for
/// df > 120 — at which point t and z differ by under 0.5 %.
pub fn t_critical(df: u64, confidence: f64) -> f64 {
    assert!(df > 0, "t_critical requires df ≥ 1");
    // Columns: 0.90, 0.95, 0.99 two-sided.
    const TABLE: [[f64; 3]; 30] = [
        [6.314, 12.706, 63.657],
        [2.920, 4.303, 9.925],
        [2.353, 3.182, 5.841],
        [2.132, 2.776, 4.604],
        [2.015, 2.571, 4.032],
        [1.943, 2.447, 3.707],
        [1.895, 2.365, 3.499],
        [1.860, 2.306, 3.355],
        [1.833, 2.262, 3.250],
        [1.812, 2.228, 3.169],
        [1.796, 2.201, 3.106],
        [1.782, 2.179, 3.055],
        [1.771, 2.160, 3.012],
        [1.761, 2.145, 2.977],
        [1.753, 2.131, 2.947],
        [1.746, 2.120, 2.921],
        [1.740, 2.110, 2.898],
        [1.734, 2.101, 2.878],
        [1.729, 2.093, 2.861],
        [1.725, 2.086, 2.845],
        [1.721, 2.080, 2.831],
        [1.717, 2.074, 2.819],
        [1.714, 2.069, 2.807],
        [1.711, 2.064, 2.797],
        [1.708, 2.060, 2.787],
        [1.706, 2.056, 2.779],
        [1.703, 2.052, 2.771],
        [1.701, 2.048, 2.763],
        [1.699, 2.045, 2.756],
        [1.697, 2.042, 2.750],
    ];
    const ANCHORS: [(u64, [f64; 3]); 3] = [
        (40, [1.684, 2.021, 2.704]),
        (60, [1.671, 2.000, 2.660]),
        (120, [1.658, 1.980, 2.617]),
    ];
    const Z: [f64; 3] = [1.644_853_627, 1.959_963_985, 2.575_829_304];
    let col = if (confidence - 0.90).abs() < 1e-9 {
        0
    } else if (confidence - 0.95).abs() < 1e-9 {
        1
    } else if (confidence - 0.99).abs() < 1e-9 {
        2
    } else {
        panic!("t_critical supports confidence 0.90 / 0.95 / 0.99, got {confidence}")
    };
    if df <= 30 {
        return TABLE[(df - 1) as usize][col];
    }
    if df > 120 {
        return Z[col];
    }
    // Linear interpolation in 1/df between the bracketing anchors (the
    // classical textbook device; error < 0.001 over this range).
    let (mut lo_df, mut lo_v) = (30u64, TABLE[29][col]);
    for &(a_df, a_v) in &ANCHORS {
        if df <= a_df {
            let x = 1.0 / df as f64;
            let x0 = 1.0 / lo_df as f64;
            let x1 = 1.0 / a_df as f64;
            return lo_v + (a_v[col] - lo_v) * (x - x0) / (x1 - x0);
        }
        lo_df = a_df;
        lo_v = a_v[col];
    }
    unreachable!("df ≤ 120 is always bracketed")
}

/// Summary over antithetic *pair means*.
///
/// Feed it per-run values in run order; runs `2p` and `2p+1` form pair
/// `p`, and each completed pair contributes `(x₂ₚ + x₂ₚ₊₁)/2` to an inner
/// [`Summary`]. Because pair members are negatively correlated by
/// construction, the variance over pair means — not the naive per-run
/// variance — is the correct basis for a confidence interval on the mean.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PairedSummary {
    pairs: Summary,
    pending: Option<f64>,
}

impl PairedSummary {
    /// Creates an empty paired summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one per-run observation; every second call completes a pair.
    pub fn push(&mut self, x: f64) {
        match self.pending.take() {
            Some(first) => self.pairs.push(0.5 * (first + x)),
            None => self.pending = Some(x),
        }
    }

    /// Number of completed pairs.
    pub fn pairs(&self) -> u64 {
        self.pairs.count()
    }

    /// Mean over completed pair means (equals the plain mean over those
    /// runs). An unpaired trailing value is excluded.
    pub fn mean(&self) -> f64 {
        self.pairs.mean()
    }

    /// Standard error of the mean, estimated over pair means.
    pub fn std_err(&self) -> f64 {
        self.pairs.std_err()
    }

    /// Student-t CI half-width over pair means (df = pairs − 1).
    pub fn ci_half_width(&self, confidence: f64) -> f64 {
        self.pairs.ci_half_width(confidence)
    }

    /// The inner summary of pair means.
    pub fn inner(&self) -> &Summary {
        &self.pairs
    }
}

/// Per-stratum [`Summary`]s folded with fixed stratum weights.
///
/// For equal-probability strata (the generator's
/// [`crate::SimRng::set_next_stratum`] remap) every weight is `1/K`. The
/// stratified mean is `Σ wⱼ·meanⱼ` and the estimator variance is
/// `Σ wⱼ²·sⱼ²/nⱼ` — strictly smaller than the crude-Monte-Carlo variance
/// whenever the strata means differ.
#[derive(Debug, Clone, PartialEq)]
pub struct StratifiedSummary {
    strata: Vec<Summary>,
    weights: Vec<f64>,
}

impl StratifiedSummary {
    /// Creates a stratified summary with `k` equal-weight strata.
    pub fn equal_weights(k: usize) -> Self {
        assert!(k > 0, "at least one stratum");
        Self {
            strata: vec![Summary::new(); k],
            weights: vec![1.0 / k as f64; k],
        }
    }

    /// Creates a stratified summary with explicit stratum weights
    /// (must sum to ≈ 1).
    pub fn with_weights(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "at least one stratum");
        let total: f64 = weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "weights must sum to 1");
        Self {
            strata: vec![Summary::new(); weights.len()],
            weights,
        }
    }

    /// Adds one observation to stratum `j`.
    pub fn push(&mut self, j: usize, x: f64) {
        self.strata[j].push(x);
    }

    /// Number of strata.
    pub fn strata(&self) -> usize {
        self.strata.len()
    }

    /// Per-stratum summaries, in stratum order.
    pub fn stratum(&self, j: usize) -> &Summary {
        &self.strata[j]
    }

    /// Total observations across strata.
    pub fn count(&self) -> u64 {
        self.strata.iter().map(Summary::count).sum()
    }

    /// Stratum-weighted mean `Σ wⱼ·meanⱼ` (0 until every stratum has at
    /// least one observation).
    pub fn mean(&self) -> f64 {
        if self.strata.iter().any(|s| s.count() == 0) {
            return 0.0;
        }
        self.strata
            .iter()
            .zip(&self.weights)
            .map(|(s, w)| w * s.mean())
            .sum()
    }

    /// Standard error of the stratified mean, `√(Σ wⱼ²·sⱼ²/nⱼ)`.
    /// Requires every stratum to hold ≥ 2 observations; returns 0 before
    /// that.
    pub fn std_err(&self) -> f64 {
        if self.strata.iter().any(|s| s.count() < 2) {
            return 0.0;
        }
        self.strata
            .iter()
            .zip(&self.weights)
            .map(|(s, w)| w * w * s.variance() / s.count() as f64)
            .sum::<f64>()
            .sqrt()
    }

    /// Student-t CI half-width of the stratified mean. Degrees of freedom
    /// are taken conservatively as `Σ(nⱼ − 1)` (Satterthwaite would only
    /// be larger, so this never under-covers by df choice).
    pub fn ci_half_width(&self, confidence: f64) -> f64 {
        if self.strata.iter().any(|s| s.count() < 2) {
            return 0.0;
        }
        let df: u64 = self.strata.iter().map(|s| s.count() - 1).sum();
        t_critical(df, confidence) * self.std_err()
    }

    /// Neyman allocation of `n` further observations: stratum `j` receives
    /// a share proportional to `wⱼ·σⱼ` (largest-remainder rounding, ties
    /// to the lower stratum index — fully deterministic). Falls back to a
    /// proportional split while any stratum still lacks a variance
    /// estimate, so pilot batches self-bootstrap.
    pub fn neyman_allocation(&self, n: usize) -> Vec<usize> {
        let k = self.strata.len();
        let mut scores: Vec<f64> = self
            .strata
            .iter()
            .zip(&self.weights)
            .map(|(s, w)| w * s.std_dev())
            .collect();
        let total: f64 = scores.iter().sum();
        if !(total > 0.0) || self.strata.iter().any(|s| s.count() < 2) {
            scores = self.weights.clone();
        }
        let total: f64 = scores.iter().sum();
        let mut alloc = vec![0usize; k];
        let mut rema: Vec<(usize, f64)> = Vec::with_capacity(k);
        let mut assigned = 0usize;
        for j in 0..k {
            let exact = n as f64 * scores[j] / total;
            let base = exact.floor() as usize;
            alloc[j] = base;
            assigned += base;
            rema.push((j, exact - base as f64));
        }
        // Largest remainder first; ties broken by stratum index.
        rema.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        for (j, _) in rema.into_iter().take(n - assigned) {
            alloc[j] += 1;
        }
        alloc
    }
}

/// Interpolated quantiles over a sorted copy of a data set.
#[derive(Debug, Clone)]
pub struct Quantiles {
    sorted: Vec<f64>,
}

impl Quantiles {
    /// Builds a quantile table (sorts a copy of `values`). Panics on empty
    /// input or non-finite values.
    pub fn new(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "Quantiles requires at least one value");
        assert!(values.iter().all(|v| v.is_finite()), "values must be finite");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self { sorted }
    }

    /// The q-quantile (linear interpolation, R-7 / NumPy default).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        if i + 1 < n {
            self.sorted[i] * (1.0 - frac) + self.sorted[i + 1] * frac
        } else {
            self.sorted[n - 1]
        }
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Underlying sorted values.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// Tukey box-plot statistics: quartiles, whiskers at 1.5·IQR, outliers.
///
/// This is exactly what Fig. 2a draws per failure sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxPlot {
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Lowest observation within `q1 − 1.5·IQR`.
    pub whisker_lo: f64,
    /// Highest observation within `q3 + 1.5·IQR`.
    pub whisker_hi: f64,
    /// Observations outside the whiskers.
    pub outliers: Vec<f64>,
    /// Arithmetic mean (annotated beside each box in Fig. 2a).
    pub mean: f64,
}

impl BoxPlot {
    /// Computes box-plot statistics for `values`. Panics on empty input.
    pub fn new(values: &[f64]) -> Self {
        let q = Quantiles::new(values);
        let (q1, median, q3) = (q.quantile(0.25), q.median(), q.quantile(0.75));
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let mut whisker_lo = f64::INFINITY;
        let mut whisker_hi = f64::NEG_INFINITY;
        let mut outliers = Vec::new();
        for &v in q.sorted() {
            if v < lo_fence || v > hi_fence {
                outliers.push(v);
            } else {
                whisker_lo = whisker_lo.min(v);
                whisker_hi = whisker_hi.max(v);
            }
        }
        // All-outlier degenerate case cannot occur: the quartiles themselves
        // always lie inside the fences.
        let mean = Summary::from_slice(values).mean();
        Self {
            q1,
            median,
            q3,
            whisker_lo,
            whisker_hi,
            outliers,
            mean,
        }
    }

    /// Inter-quartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Two-sample Kolmogorov–Smirnov comparison.
///
/// Used to validate that a *mined* lead-time distribution (recovered by
/// the chain analyzer from synthetic logs) statistically matches the
/// design ground truth, and available to users for comparing failure
/// traces across configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic D = sup |F₁(x) − F₂(x)|.
    pub statistic: f64,
    /// Asymptotic two-sided p-value (Kolmogorov distribution
    /// approximation; accurate for n ≳ 35 per sample).
    pub p_value: f64,
}

impl KsResult {
    /// True if the samples are consistent with a common distribution at
    /// significance level `alpha`.
    pub fn same_distribution(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Two-sample KS test. Panics on empty inputs or non-finite values.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsResult {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    assert!(
        a.iter().chain(b).all(|x| x.is_finite()),
        "KS samples must be finite"
    );
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    let (n, m) = (sa.len(), sb.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n && j < m {
        let x = sa[i].min(sb[j]);
        while i < n && sa[i] <= x {
            i += 1;
        }
        while j < m && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / n as f64;
        let fb = j as f64 / m as f64;
        d = d.max((fa - fb).abs());
    }
    // Asymptotic p-value: Q_KS(λ) with λ = (√ne + 0.12 + 0.11/√ne)·D,
    // ne = n·m/(n+m)  (Numerical Recipes formulation).
    let ne = (n as f64 * m as f64) / (n + m) as f64;
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

/// One-sample KS goodness-of-fit test of `samples` against a theoretical
/// CDF. Panics on empty input, non-finite values, or a `cdf` that leaves
/// `[0, 1]` on any sample point.
///
/// This is the statistical self-test primitive: every analytic
/// distribution in [`crate::dist`] is validated against its own closed
/// form, and the empirical lead-time mixture against its survival
/// function (Fig. 2a anchors).
pub fn ks_one_sample(samples: &[f64], cdf: impl Fn(f64) -> f64) -> KsResult {
    assert!(!samples.is_empty(), "KS needs a non-empty sample");
    assert!(
        samples.iter().all(|x| x.is_finite()),
        "KS samples must be finite"
    );
    let mut s = samples.to_vec();
    s.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    let n = s.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in s.iter().enumerate() {
        let f = cdf(x);
        assert!((0.0..=1.0).contains(&f), "cdf({x}) = {f} outside [0, 1]");
        // The empirical CDF steps from i/n to (i+1)/n at x: both sides
        // of the step bound the deviation.
        d = d.max((f - i as f64 / n).abs());
        d = d.max(((i + 1) as f64 / n - f).abs());
    }
    let sqrt_n = n.sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

/// The Kolmogorov survival function Q(λ) = 2·Σ (−1)^{k−1} e^{−2k²λ²}.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda < 1e-3 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Fixed-width-bin histogram over `[lo, hi)` with under/overflow counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `nbins` equal-width bins on `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo && nbins > 0, "invalid histogram bounds or bin count");
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.variance() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.sum() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_and_singleton() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut s1 = Summary::new();
        s1.push(7.0);
        assert_eq!(s1.mean(), 7.0);
        assert_eq!(s1.variance(), 0.0);
        assert_eq!(s1.std_err(), 0.0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let seq = Summary::from_slice(&all);
        let mut a = Summary::from_slice(&all[..37]);
        let b = Summary::from_slice(&all[37..]);
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.variance() - seq.variance()).abs() < 1e-10);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::from_slice(&[1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantiles_interpolation() {
        let q = Quantiles::new(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(q.quantile(0.0), 10.0);
        assert_eq!(q.quantile(1.0), 40.0);
        assert!((q.median() - 25.0).abs() < 1e-12);
        assert!((q.quantile(1.0 / 3.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn boxplot_flags_outliers() {
        let mut vals: Vec<f64> = (1..=20).map(|x| x as f64).collect();
        vals.push(1000.0);
        let b = BoxPlot::new(&vals);
        assert_eq!(b.outliers, vec![1000.0]);
        assert!(b.whisker_hi <= 20.0);
        assert!(b.median > 5.0 && b.median < 16.0);
        assert!(b.iqr() > 0.0);
    }

    #[test]
    fn boxplot_uniform_no_outliers() {
        let vals: Vec<f64> = (0..100).map(|x| x as f64).collect();
        let b = BoxPlot::new(&vals);
        assert!(b.outliers.is_empty());
        assert_eq!(b.whisker_lo, 0.0);
        assert_eq!(b.whisker_hi, 99.0);
        assert!((b.mean - 49.5).abs() < 1e-12);
    }

    #[test]
    fn ks_identical_samples_accept() {
        let a: Vec<f64> = (0..200).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let r = ks_two_sample(&a, &a);
        assert_eq!(r.statistic, 0.0);
        assert!(r.p_value > 0.99);
        assert!(r.same_distribution(0.05));
    }

    #[test]
    fn ks_same_distribution_different_samples_accept() {
        use crate::dist::{Distribution, Weibull};
        use crate::rng::SimRng;
        let w = Weibull::new(0.7, 5.0);
        let mut rng = SimRng::seed_from(31);
        let a = w.sample_n(&mut rng, 800);
        let b = w.sample_n(&mut rng, 600);
        let r = ks_two_sample(&a, &b);
        assert!(
            r.same_distribution(0.01),
            "same-law samples rejected: D={}, p={}",
            r.statistic,
            r.p_value
        );
    }

    #[test]
    fn ks_different_distributions_reject() {
        use crate::dist::{Distribution, Exponential, Normal};
        use crate::rng::SimRng;
        let mut rng = SimRng::seed_from(17);
        let a = Normal::new(10.0, 1.0).sample_n(&mut rng, 500);
        let b = Exponential::new(10.0).sample_n(&mut rng, 500);
        let r = ks_two_sample(&a, &b);
        assert!(
            !r.same_distribution(0.05),
            "different laws accepted: D={}, p={}",
            r.statistic,
            r.p_value
        );
        assert!(r.statistic > 0.2);
    }

    #[test]
    fn ks_shifted_distribution_rejects() {
        let a: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..300).map(|i| i as f64 + 100.0).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.statistic > 0.3);
        assert!(r.p_value < 0.01);
    }

    /// Standard normal CDF via Abramowitz–Stegun 7.1.26 (|err| < 1.5e-7),
    /// plenty for KS at the sample sizes used here.
    fn normal_cdf(z: f64) -> f64 {
        let x = z / std::f64::consts::SQRT_2;
        let t = 1.0 / (1.0 + 0.3275911 * x.abs());
        let poly = t
            * (0.254829592
                + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
        let erf = 1.0 - poly * (-x * x).exp();
        let erf = if x < 0.0 { -erf } else { erf };
        0.5 * (1.0 + erf)
    }

    #[test]
    fn gof_weibull_matches_its_cdf() {
        use crate::dist::{Distribution, Weibull};
        use crate::rng::SimRng;
        // The Titan MTBF law (shape 0.7 — DESIGN.md §3) and a wear-out
        // shape, each against the closed-form CDF.
        for (seed, shape, scale) in [(101, 0.7, 5.0), (102, 1.8, 3600.0)] {
            let w = Weibull::new(shape, scale);
            let mut rng = SimRng::seed_from(seed);
            let samples = w.sample_n(&mut rng, 1500);
            let r = ks_one_sample(&samples, |x| w.cdf(x));
            assert!(
                r.same_distribution(0.01),
                "Weibull({shape}, {scale}) rejected its own CDF: D={}, p={}",
                r.statistic,
                r.p_value
            );
        }
    }

    #[test]
    fn gof_lognormal_matches_its_cdf() {
        use crate::dist::{Distribution, LogNormal};
        use crate::rng::SimRng;
        // from_mean_cv is how the failure generator parameterizes lead
        // errors; validate via the underlying normal on the log scale.
        let d = LogNormal::from_mean_cv(50.0, 0.5);
        let mut rng = SimRng::seed_from(103);
        let samples = d.sample_n(&mut rng, 1500);
        let r = ks_one_sample(&samples, |x| {
            if x <= 0.0 {
                0.0
            } else {
                normal_cdf((x.ln() - d.mu) / d.sigma)
            }
        });
        assert!(
            r.same_distribution(0.01),
            "LogNormal rejected its own CDF: D={}, p={}",
            r.statistic,
            r.p_value
        );
    }

    #[test]
    fn gof_truncated_normal_matches_its_cdf() {
        use crate::dist::{Distribution, TruncatedNormal};
        use crate::rng::SimRng;
        // A Fig.-2a-style sequence: mean 60 s, σ 25 s, truncated at 0 —
        // the rejection sampler must reproduce the renormalized CDF.
        let d = TruncatedNormal::new(60.0, 25.0, 0.0);
        let mut rng = SimRng::seed_from(104);
        let samples = d.sample_n(&mut rng, 1500);
        let mass_below = normal_cdf((d.lower_bound() - d.mu()) / d.sigma());
        let r = ks_one_sample(&samples, |x| {
            if x < d.lower_bound() {
                0.0
            } else {
                ((normal_cdf((x - d.mu()) / d.sigma()) - mass_below) / (1.0 - mass_below))
                    .clamp(0.0, 1.0)
            }
        });
        assert!(
            r.same_distribution(0.01),
            "TruncatedNormal rejected its own CDF: D={}, p={}",
            r.statistic,
            r.p_value
        );
    }

    #[test]
    fn ks_one_sample_rejects_wrong_law() {
        use crate::dist::{Distribution, Exponential};
        use crate::rng::SimRng;
        let mut rng = SimRng::seed_from(105);
        let samples = Exponential::new(10.0).sample_n(&mut rng, 800);
        // Test exponential data against a uniform CDF on [0, 30].
        let r = ks_one_sample(&samples, |x| (x / 30.0).clamp(0.0, 1.0));
        assert!(!r.same_distribution(0.05), "wrong law accepted: p={}", r.p_value);
        assert!(r.statistic > 0.15);
    }

    #[test]
    fn kolmogorov_q_edges() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(0.5) > 0.9);
        assert!(kolmogorov_q(2.0) < 0.001);
    }

    #[test]
    fn t_critical_matches_published_table() {
        // Spot values straight from the standard two-sided t table.
        assert_eq!(t_critical(1, 0.95), 12.706);
        assert_eq!(t_critical(4, 0.95), 2.776);
        assert_eq!(t_critical(10, 0.99), 3.169);
        assert_eq!(t_critical(30, 0.90), 1.697);
        // Interpolated range: bracketed by its anchors, monotone.
        let t50 = t_critical(50, 0.95);
        assert!(t50 < t_critical(40, 0.95) && t50 > t_critical(60, 0.95));
        assert!((t_critical(40, 0.95) - 2.021).abs() < 1e-9);
        assert!((t50 - 2.009).abs() < 0.002, "t(50, .95) = {t50}");
        // Normal fallback past 120.
        assert!((t_critical(121, 0.95) - 1.959_963_985).abs() < 1e-9);
        assert!((t_critical(10_000, 0.90) - 1.644_853_627).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn t_critical_rejects_unsupported_confidence() {
        t_critical(10, 0.5);
    }

    #[test]
    fn ci_half_width_known_example() {
        // n = 5, values 1..5: mean 3, s = √2.5, se = √0.5, t₄ = 2.776.
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let want = 2.776 * (0.5f64).sqrt();
        assert!((s.ci_half_width(0.95) - want).abs() < 1e-9);
        // Degenerate cases.
        assert_eq!(Summary::new().ci_half_width(0.95), 0.0);
        assert_eq!(Summary::from_slice(&[7.0]).ci_half_width(0.95), 0.0);
    }

    #[test]
    fn paired_summary_means_and_pending() {
        let mut p = PairedSummary::new();
        for x in [1.0, 3.0, 5.0, 7.0, 100.0] {
            p.push(x);
        }
        // Pairs (1,3) and (5,7); the trailing 100 is pending.
        assert_eq!(p.pairs(), 2);
        assert_eq!(p.mean(), 4.0);
        assert_eq!(p.inner().min(), 2.0);
        assert_eq!(p.inner().max(), 6.0);
    }

    #[test]
    fn paired_summary_kills_variance_of_perfect_antithesis() {
        // x and c − x in each pair: every pair mean is c/2 exactly.
        let mut p = PairedSummary::new();
        let mut plain = Summary::new();
        for i in 0..100 {
            let x = i as f64;
            p.push(x);
            p.push(10.0 - x);
            plain.push(x);
            plain.push(10.0 - x);
        }
        assert_eq!(p.mean(), 5.0);
        assert_eq!(p.std_err(), 0.0);
        assert!(plain.std_err() > 1.0, "plain se {}", plain.std_err());
    }

    #[test]
    fn stratified_equal_weight_fold_matches_flat_merge() {
        // Round-robin over K strata with a count divisible by K: the
        // stratified mean equals the flat mean exactly, and per-stratum
        // merges reassemble the flat summary.
        let values: Vec<f64> = (0..240).map(|i| ((i * 37) % 101) as f64).collect();
        const K: usize = 8;
        let mut strat = StratifiedSummary::equal_weights(K);
        let mut per_stratum = vec![Summary::new(); K];
        for (i, &v) in values.iter().enumerate() {
            strat.push(i % K, v);
            per_stratum[i % K].push(v);
        }
        let mut merged = Summary::new();
        for s in &per_stratum {
            merged.merge(s);
        }
        let flat = Summary::from_slice(&values);
        assert_eq!(merged.count(), flat.count());
        assert!((merged.mean() - flat.mean()).abs() < 1e-9);
        assert!((merged.variance() - flat.variance()).abs() < 1e-9);
        assert!((strat.mean() - flat.mean()).abs() < 1e-9);
        assert_eq!(strat.count(), flat.count());
    }

    #[test]
    fn stratified_variance_drops_when_strata_separate_means() {
        // Values clustered by stratum: stratified se ≪ crude se.
        let mut strat = StratifiedSummary::equal_weights(4);
        let mut flat = Summary::new();
        let mut k = 0u64;
        for j in 0..4usize {
            for _ in 0..50 {
                // Base level 100·j plus small deterministic jitter.
                k = k.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                let jitter = (k >> 33) as f64 / u32::MAX as f64;
                let v = 100.0 * j as f64 + jitter;
                strat.push(j, v);
                flat.push(v);
            }
        }
        assert!(strat.std_err() < 0.1 * flat.std_err());
        assert!(strat.ci_half_width(0.95) < 0.1 * flat.ci_half_width(0.95));
    }

    #[test]
    fn neyman_allocation_is_deterministic_and_exhaustive() {
        let mut strat = StratifiedSummary::equal_weights(3);
        // Stratum σ ≈ 0, 1, 10 → allocation skews to stratum 2.
        for i in 0..10 {
            let x = i as f64;
            strat.push(0, 5.0);
            strat.push(1, x * 0.2);
            strat.push(2, x * 2.0);
        }
        let alloc = strat.neyman_allocation(32);
        assert_eq!(alloc.iter().sum::<usize>(), 32);
        assert!(alloc[2] > alloc[1] && alloc[1] > alloc[0]);
        assert_eq!(alloc, strat.neyman_allocation(32));
        // Pilot fallback: no variance yet → proportional split.
        let pilot = StratifiedSummary::equal_weights(4);
        assert_eq!(pilot.neyman_allocation(8), vec![2, 2, 2, 2]);
    }

    #[test]
    fn histogram_binning_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(-1.0); // underflow
        h.push(0.0); // bin 0
        h.push(9.999); // bin 9
        h.push(10.0); // overflow (hi is exclusive)
        h.push(5.5); // bin 5
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.total(), 5);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(9) - 9.5).abs() < 1e-12);
    }
}

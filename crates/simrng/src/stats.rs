//! Streaming and batch statistics.
//!
//! The experiment harnesses aggregate 1000 Monte-Carlo runs per
//! configuration (Sec. V) and render box plots (Fig. 2a) and heat maps
//! (Fig. 2c). This module provides the numeric building blocks:
//! Welford-style streaming summaries, interpolated quantiles, fixed-bin
//! histograms and Tukey box-plot statistics.

/// Streaming summary: count, mean, variance (Welford), min, max.
///
/// Numerically stable for long accumulations; merging two summaries
/// (parallel reduction across worker threads) is supported via
/// [`Summary::merge`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice in one pass.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "Summary::push requires finite values");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (Chan's parallel algorithm).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean (0 when fewer than two observations).
    pub fn std_err(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }
}

/// Interpolated quantiles over a sorted copy of a data set.
#[derive(Debug, Clone)]
pub struct Quantiles {
    sorted: Vec<f64>,
}

impl Quantiles {
    /// Builds a quantile table (sorts a copy of `values`). Panics on empty
    /// input or non-finite values.
    pub fn new(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "Quantiles requires at least one value");
        assert!(values.iter().all(|v| v.is_finite()), "values must be finite");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self { sorted }
    }

    /// The q-quantile (linear interpolation, R-7 / NumPy default).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        if i + 1 < n {
            self.sorted[i] * (1.0 - frac) + self.sorted[i + 1] * frac
        } else {
            self.sorted[n - 1]
        }
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Underlying sorted values.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// Tukey box-plot statistics: quartiles, whiskers at 1.5·IQR, outliers.
///
/// This is exactly what Fig. 2a draws per failure sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxPlot {
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Lowest observation within `q1 − 1.5·IQR`.
    pub whisker_lo: f64,
    /// Highest observation within `q3 + 1.5·IQR`.
    pub whisker_hi: f64,
    /// Observations outside the whiskers.
    pub outliers: Vec<f64>,
    /// Arithmetic mean (annotated beside each box in Fig. 2a).
    pub mean: f64,
}

impl BoxPlot {
    /// Computes box-plot statistics for `values`. Panics on empty input.
    pub fn new(values: &[f64]) -> Self {
        let q = Quantiles::new(values);
        let (q1, median, q3) = (q.quantile(0.25), q.median(), q.quantile(0.75));
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let mut whisker_lo = f64::INFINITY;
        let mut whisker_hi = f64::NEG_INFINITY;
        let mut outliers = Vec::new();
        for &v in q.sorted() {
            if v < lo_fence || v > hi_fence {
                outliers.push(v);
            } else {
                whisker_lo = whisker_lo.min(v);
                whisker_hi = whisker_hi.max(v);
            }
        }
        // All-outlier degenerate case cannot occur: the quartiles themselves
        // always lie inside the fences.
        let mean = Summary::from_slice(values).mean();
        Self {
            q1,
            median,
            q3,
            whisker_lo,
            whisker_hi,
            outliers,
            mean,
        }
    }

    /// Inter-quartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Two-sample Kolmogorov–Smirnov comparison.
///
/// Used to validate that a *mined* lead-time distribution (recovered by
/// the chain analyzer from synthetic logs) statistically matches the
/// design ground truth, and available to users for comparing failure
/// traces across configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic D = sup |F₁(x) − F₂(x)|.
    pub statistic: f64,
    /// Asymptotic two-sided p-value (Kolmogorov distribution
    /// approximation; accurate for n ≳ 35 per sample).
    pub p_value: f64,
}

impl KsResult {
    /// True if the samples are consistent with a common distribution at
    /// significance level `alpha`.
    pub fn same_distribution(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Two-sample KS test. Panics on empty inputs or non-finite values.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsResult {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    assert!(
        a.iter().chain(b).all(|x| x.is_finite()),
        "KS samples must be finite"
    );
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    let (n, m) = (sa.len(), sb.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n && j < m {
        let x = sa[i].min(sb[j]);
        while i < n && sa[i] <= x {
            i += 1;
        }
        while j < m && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / n as f64;
        let fb = j as f64 / m as f64;
        d = d.max((fa - fb).abs());
    }
    // Asymptotic p-value: Q_KS(λ) with λ = (√ne + 0.12 + 0.11/√ne)·D,
    // ne = n·m/(n+m)  (Numerical Recipes formulation).
    let ne = (n as f64 * m as f64) / (n + m) as f64;
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

/// One-sample KS goodness-of-fit test of `samples` against a theoretical
/// CDF. Panics on empty input, non-finite values, or a `cdf` that leaves
/// `[0, 1]` on any sample point.
///
/// This is the statistical self-test primitive: every analytic
/// distribution in [`crate::dist`] is validated against its own closed
/// form, and the empirical lead-time mixture against its survival
/// function (Fig. 2a anchors).
pub fn ks_one_sample(samples: &[f64], cdf: impl Fn(f64) -> f64) -> KsResult {
    assert!(!samples.is_empty(), "KS needs a non-empty sample");
    assert!(
        samples.iter().all(|x| x.is_finite()),
        "KS samples must be finite"
    );
    let mut s = samples.to_vec();
    s.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    let n = s.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in s.iter().enumerate() {
        let f = cdf(x);
        assert!((0.0..=1.0).contains(&f), "cdf({x}) = {f} outside [0, 1]");
        // The empirical CDF steps from i/n to (i+1)/n at x: both sides
        // of the step bound the deviation.
        d = d.max((f - i as f64 / n).abs());
        d = d.max(((i + 1) as f64 / n - f).abs());
    }
    let sqrt_n = n.sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

/// The Kolmogorov survival function Q(λ) = 2·Σ (−1)^{k−1} e^{−2k²λ²}.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda < 1e-3 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Fixed-width-bin histogram over `[lo, hi)` with under/overflow counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `nbins` equal-width bins on `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo && nbins > 0, "invalid histogram bounds or bin count");
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.variance() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.sum() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_and_singleton() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut s1 = Summary::new();
        s1.push(7.0);
        assert_eq!(s1.mean(), 7.0);
        assert_eq!(s1.variance(), 0.0);
        assert_eq!(s1.std_err(), 0.0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let seq = Summary::from_slice(&all);
        let mut a = Summary::from_slice(&all[..37]);
        let b = Summary::from_slice(&all[37..]);
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.variance() - seq.variance()).abs() < 1e-10);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::from_slice(&[1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantiles_interpolation() {
        let q = Quantiles::new(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(q.quantile(0.0), 10.0);
        assert_eq!(q.quantile(1.0), 40.0);
        assert!((q.median() - 25.0).abs() < 1e-12);
        assert!((q.quantile(1.0 / 3.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn boxplot_flags_outliers() {
        let mut vals: Vec<f64> = (1..=20).map(|x| x as f64).collect();
        vals.push(1000.0);
        let b = BoxPlot::new(&vals);
        assert_eq!(b.outliers, vec![1000.0]);
        assert!(b.whisker_hi <= 20.0);
        assert!(b.median > 5.0 && b.median < 16.0);
        assert!(b.iqr() > 0.0);
    }

    #[test]
    fn boxplot_uniform_no_outliers() {
        let vals: Vec<f64> = (0..100).map(|x| x as f64).collect();
        let b = BoxPlot::new(&vals);
        assert!(b.outliers.is_empty());
        assert_eq!(b.whisker_lo, 0.0);
        assert_eq!(b.whisker_hi, 99.0);
        assert!((b.mean - 49.5).abs() < 1e-12);
    }

    #[test]
    fn ks_identical_samples_accept() {
        let a: Vec<f64> = (0..200).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let r = ks_two_sample(&a, &a);
        assert_eq!(r.statistic, 0.0);
        assert!(r.p_value > 0.99);
        assert!(r.same_distribution(0.05));
    }

    #[test]
    fn ks_same_distribution_different_samples_accept() {
        use crate::dist::{Distribution, Weibull};
        use crate::rng::SimRng;
        let w = Weibull::new(0.7, 5.0);
        let mut rng = SimRng::seed_from(31);
        let a = w.sample_n(&mut rng, 800);
        let b = w.sample_n(&mut rng, 600);
        let r = ks_two_sample(&a, &b);
        assert!(
            r.same_distribution(0.01),
            "same-law samples rejected: D={}, p={}",
            r.statistic,
            r.p_value
        );
    }

    #[test]
    fn ks_different_distributions_reject() {
        use crate::dist::{Distribution, Exponential, Normal};
        use crate::rng::SimRng;
        let mut rng = SimRng::seed_from(17);
        let a = Normal::new(10.0, 1.0).sample_n(&mut rng, 500);
        let b = Exponential::new(10.0).sample_n(&mut rng, 500);
        let r = ks_two_sample(&a, &b);
        assert!(
            !r.same_distribution(0.05),
            "different laws accepted: D={}, p={}",
            r.statistic,
            r.p_value
        );
        assert!(r.statistic > 0.2);
    }

    #[test]
    fn ks_shifted_distribution_rejects() {
        let a: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..300).map(|i| i as f64 + 100.0).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.statistic > 0.3);
        assert!(r.p_value < 0.01);
    }

    /// Standard normal CDF via Abramowitz–Stegun 7.1.26 (|err| < 1.5e-7),
    /// plenty for KS at the sample sizes used here.
    fn normal_cdf(z: f64) -> f64 {
        let x = z / std::f64::consts::SQRT_2;
        let t = 1.0 / (1.0 + 0.3275911 * x.abs());
        let poly = t
            * (0.254829592
                + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
        let erf = 1.0 - poly * (-x * x).exp();
        let erf = if x < 0.0 { -erf } else { erf };
        0.5 * (1.0 + erf)
    }

    #[test]
    fn gof_weibull_matches_its_cdf() {
        use crate::dist::{Distribution, Weibull};
        use crate::rng::SimRng;
        // The Titan MTBF law (shape 0.7 — DESIGN.md §3) and a wear-out
        // shape, each against the closed-form CDF.
        for (seed, shape, scale) in [(101, 0.7, 5.0), (102, 1.8, 3600.0)] {
            let w = Weibull::new(shape, scale);
            let mut rng = SimRng::seed_from(seed);
            let samples = w.sample_n(&mut rng, 1500);
            let r = ks_one_sample(&samples, |x| w.cdf(x));
            assert!(
                r.same_distribution(0.01),
                "Weibull({shape}, {scale}) rejected its own CDF: D={}, p={}",
                r.statistic,
                r.p_value
            );
        }
    }

    #[test]
    fn gof_lognormal_matches_its_cdf() {
        use crate::dist::{Distribution, LogNormal};
        use crate::rng::SimRng;
        // from_mean_cv is how the failure generator parameterizes lead
        // errors; validate via the underlying normal on the log scale.
        let d = LogNormal::from_mean_cv(50.0, 0.5);
        let mut rng = SimRng::seed_from(103);
        let samples = d.sample_n(&mut rng, 1500);
        let r = ks_one_sample(&samples, |x| {
            if x <= 0.0 {
                0.0
            } else {
                normal_cdf((x.ln() - d.mu) / d.sigma)
            }
        });
        assert!(
            r.same_distribution(0.01),
            "LogNormal rejected its own CDF: D={}, p={}",
            r.statistic,
            r.p_value
        );
    }

    #[test]
    fn gof_truncated_normal_matches_its_cdf() {
        use crate::dist::{Distribution, TruncatedNormal};
        use crate::rng::SimRng;
        // A Fig.-2a-style sequence: mean 60 s, σ 25 s, truncated at 0 —
        // the rejection sampler must reproduce the renormalized CDF.
        let d = TruncatedNormal::new(60.0, 25.0, 0.0);
        let mut rng = SimRng::seed_from(104);
        let samples = d.sample_n(&mut rng, 1500);
        let mass_below = normal_cdf((d.lower_bound() - d.mu()) / d.sigma());
        let r = ks_one_sample(&samples, |x| {
            if x < d.lower_bound() {
                0.0
            } else {
                ((normal_cdf((x - d.mu()) / d.sigma()) - mass_below) / (1.0 - mass_below))
                    .clamp(0.0, 1.0)
            }
        });
        assert!(
            r.same_distribution(0.01),
            "TruncatedNormal rejected its own CDF: D={}, p={}",
            r.statistic,
            r.p_value
        );
    }

    #[test]
    fn ks_one_sample_rejects_wrong_law() {
        use crate::dist::{Distribution, Exponential};
        use crate::rng::SimRng;
        let mut rng = SimRng::seed_from(105);
        let samples = Exponential::new(10.0).sample_n(&mut rng, 800);
        // Test exponential data against a uniform CDF on [0, 30].
        let r = ks_one_sample(&samples, |x| (x / 30.0).clamp(0.0, 1.0));
        assert!(!r.same_distribution(0.05), "wrong law accepted: p={}", r.p_value);
        assert!(r.statistic > 0.15);
    }

    #[test]
    fn kolmogorov_q_edges() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(0.5) > 0.9);
        assert!(kolmogorov_q(2.0) < 0.001);
    }

    #[test]
    fn histogram_binning_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(-1.0); // underflow
        h.push(0.0); // bin 0
        h.push(9.999); // bin 9
        h.push(10.0); // overflow (hi is exclusive)
        h.push(5.5); // bin 5
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.total(), 5);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(9) - 9.5).abs() < 1e-12);
    }
}

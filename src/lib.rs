//! **pckpt** — coordinated prioritized checkpointing, reproduced in Rust.
//!
//! This is the umbrella crate of a full reimplementation of
//! *"P-ckpt: Coordinated Prioritized Checkpointing"* (Behera, Wan,
//! Mueller, Wolf, Klasky — IPDPS 2022): a failure-prediction-driven
//! Checkpoint/Restart stack for HPC systems with multi-level storage
//! (burst buffers + parallel file system), including the paper's novel
//! **p-ckpt** protocol and the **hybrid p-ckpt** model that orchestrates
//! p-ckpt with live migration.
//!
//! ## Quick start
//!
//! ```
//! use pckpt::prelude::*;
//!
//! // Simulate XGC under the base model and under hybrid p-ckpt, over
//! // identical failure traces.
//! let app = Application::by_name("XGC").unwrap();
//! let params = SimParams::paper_defaults(ModelKind::B, app);
//! let leads = LeadTimeModel::desh_default();
//! let campaign = run_models(
//!     &params,
//!     &[ModelKind::B, ModelKind::P2],
//!     &leads,
//!     &RunnerConfig::new(20, 42),
//! );
//! let saved = campaign.reduction(ModelKind::P2, ModelKind::B).unwrap();
//! assert!(saved > 0.0, "hybrid p-ckpt must beat periodic checkpointing");
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Role |
//! |-----------|-------|------|
//! | [`simrng`] | `pckpt-simrng` | deterministic RNG, distributions, statistics |
//! | [`desim`] | `pckpt-desim` | discrete-event simulation engine |
//! | [`ioperf`] | `pckpt-ioperf` | Summit-style I/O performance model |
//! | [`failure`] | `pckpt-failure` | failure generation, chain mining, prediction |
//! | [`workloads`] | `pckpt-workloads` | Table-I applications and platforms |
//! | [`core`] | `pckpt-core` | the five C/R models and the p-ckpt protocol |
//! | [`analysis`] | `pckpt-analysis` | Eqs. 4–8 and report rendering |
//!
//! See `DESIGN.md` for the system inventory and the experiment index, and
//! `EXPERIMENTS.md` for paper-vs-measured results of every table and
//! figure.

#![warn(missing_docs)]

pub use pckpt_analysis as analysis;
pub use pckpt_core as core;
pub use pckpt_desim as desim;
pub use pckpt_failure as failure;
pub use pckpt_ioperf as ioperf;
pub use pckpt_simrng as simrng;
pub use pckpt_workloads as workloads;

/// The most common imports for driving simulations.
pub mod prelude {
    pub use pckpt_core::{
        run_grid, run_many, run_models, AdaptiveConfig, Aggregate, CampaignResult, CrSim,
        GridCell, GridResult, ModelKind, OverheadLedger, RunResult, RunnerConfig, SimParams,
        VrConfig,
    };
    pub use pckpt_failure::{
        FailureDistribution, FailureTrace, LeadTimeModel, Prediction, Predictor, Projection,
        TraceConfig,
    };
    pub use pckpt_ioperf::IoHierarchy;
    pub use pckpt_simrng::SimRng;
    pub use pckpt_workloads::{Application, Platform, TABLE_I};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn umbrella_reexports_compose() {
        let app = Application::by_name("VULCAN").unwrap();
        let params = SimParams::paper_defaults(ModelKind::P1, app);
        let leads = LeadTimeModel::desh_default();
        let agg = run_many(&params, &leads, &RunnerConfig::new(3, 1));
        assert_eq!(agg.runs(), 3);
    }
}

//! Fault injection for the shard coordinator: children that die before
//! writing, write truncated frames, corrupt their digests, or hang must
//! all be **recovered by deterministic re-execution** — the merged
//! campaign digest stays bit-identical to the single-process sweep — and
//! a persistently failing shard must surface an actionable error, not a
//! hang. Faults are planted through the `PCKPT_SHARD_FAIL` hook, which
//! by default fires only on a child's first attempt so the retry heals.

use proptest::prelude::*;

use pckpt::core::{
    decode_frame, encode_frame, run_grid_filtered, run_grid_sharded_opts, RunnerConfig,
    ShardOptions, ShardSpec,
};
use pckpt::prelude::*;

mod shard_common;

/// Child entry point (see `shard_common::maybe_run_shard_child`).
#[test]
fn shard_child_entry() {
    let _ = shard_common::maybe_run_shard_child();
}

/// A 3-cell, 2-model sweep small enough to re-execute several times.
const RECIPE: &str = "sweep|XGC|1.5,1,0.5|B,P2";

fn config() -> RunnerConfig {
    RunnerConfig::new(6, 61)
}

fn golden() -> String {
    let cells = shard_common::cells_from_recipe(RECIPE).unwrap();
    let leads = LeadTimeModel::desh_default();
    shard_common::grid_digest(&run_grid_filtered(&cells, &leads, &config(), None))
}

/// Injects `fail` into one coordinator run at 2 shards and returns the
/// result plus the unsharded golden digest.
fn run_with_fault(fail: &str, opts: &ShardOptions) -> Result<(String, usize), String> {
    let cells = shard_common::cells_from_recipe(RECIPE).unwrap();
    let leads = LeadTimeModel::desh_default();
    let launcher =
        shard_common::launcher_for("shard_child_entry", RECIPE).with_env("PCKPT_SHARD_FAIL", fail);
    let grid = run_grid_sharded_opts(&cells, &leads, &config(), opts, &launcher, None)?;
    let meta = grid.shard_meta.expect("sharded runs report shard_meta");
    assert_eq!(meta.shards, 2, "plan must fan out to 2 shards");
    Ok((shard_common::grid_digest(&grid), meta.reexecutions))
}

#[test]
fn killed_child_is_reexecuted_to_identical_digest() {
    let (digest, reexecutions) =
        run_with_fault("0:kill", &ShardOptions::new(2)).expect("coordinator must recover");
    assert_eq!(reexecutions, 1, "exactly the killed shard re-executes");
    assert_eq!(digest, golden(), "recovery must not perturb a single bit");
}

#[test]
fn truncated_frame_is_reexecuted_to_identical_digest() {
    let (digest, reexecutions) =
        run_with_fault("1:truncate", &ShardOptions::new(2)).expect("coordinator must recover");
    assert_eq!(reexecutions, 1);
    assert_eq!(digest, golden());
}

#[test]
fn corrupted_frame_digest_is_reexecuted_to_identical_digest() {
    let (digest, reexecutions) =
        run_with_fault("0:baddigest", &ShardOptions::new(2)).expect("coordinator must recover");
    assert_eq!(reexecutions, 1);
    assert_eq!(digest, golden());
}

#[test]
fn hung_child_is_killed_and_reexecuted_to_identical_digest() {
    let opts = ShardOptions {
        shards: 2,
        max_attempts: 3,
        timeout_millis: 2_000,
    };
    let (digest, reexecutions) =
        run_with_fault("1:hang", &opts).expect("watchdog must break the hang");
    assert_eq!(reexecutions, 1);
    assert_eq!(digest, golden());
}

#[test]
fn persistently_failing_shard_errors_instead_of_hanging() {
    let opts = ShardOptions {
        shards: 2,
        max_attempts: 2,
        timeout_millis: 600_000,
    };
    // `:always` defeats the attempt gate: every retry dies too.
    let err = run_with_fault("0:kill:always", &opts)
        .expect_err("a shard that always dies must surface an error");
    assert!(err.contains("shard 0"), "error names the shard: {err}");
    assert!(err.contains("2 attempts"), "error counts the attempts: {err}");
}

/// Produces a real frame by running one shard in-process (the child
/// entry point minus the subprocess), for codec property testing.
fn real_frame_bytes(seed: u64, runs: usize, index: usize) -> Vec<u8> {
    let cells = shard_common::cells_from_recipe(RECIPE).unwrap();
    let leads = LeadTimeModel::desh_default();
    let out = std::env::temp_dir().join(format!("pckpt-frame-prop-{}-{seed}-{index}", std::process::id()));
    let spec = ShardSpec {
        index,
        run_splits: 2,
        group_splits: 1,
        out: out.clone(),
    };
    pckpt::core::run_shard_child(&cells, &leads, &RunnerConfig::new(runs, seed), &spec)
        .expect("in-process shard");
    let bytes = std::fs::read(&out).expect("frame file");
    std::fs::remove_file(&out).ok();
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Frame codec contract on real frames: decode∘encode is the
    /// identity (canonical bytes), and **every** strict prefix — the
    /// shapes a crashed or interrupted writer can leave behind — is
    /// rejected rather than misparsed.
    #[test]
    fn frame_codec_roundtrips_and_rejects_every_truncation(
        seed in 0u64..10_000,
        runs in 2usize..=4,
        index in 0usize..2,
    ) {
        let bytes = real_frame_bytes(seed, runs, index);
        let frame = decode_frame(&bytes).expect("full frame decodes");
        prop_assert_eq!(&encode_frame(&frame), &bytes, "re-encode must be canonical");
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_frame(&bytes[..cut]).is_err(),
                "prefix of {} / {} bytes must not decode",
                cut,
                bytes.len()
            );
        }
        // A flipped byte anywhere trips the trailing content digest.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x01;
        prop_assert!(decode_frame(&corrupt).is_err(), "bit flip must be detected");
    }
}

//! Workspace gate: `cargo test -q` fails if the tree stops linting
//! clean, so determinism regressions cannot land silently.
//!
//! Runs the linter in-process through `simlint::Workspace`, the same
//! entry point the binary uses: one load lexes and item-parses every
//! file exactly once, and both the per-file token rules and the
//! call-graph rules (transitive hot allocation, determinism taint,
//! unsafe audit) read from that shared cache — no second pass, no
//! `cargo run` subprocess.

use std::path::Path;

#[test]
fn workspace_passes_simlint() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = simlint::find_workspace_root(here).expect("workspace root");
    let ws = simlint::Workspace::load(&root).expect("load workspace sources");
    let findings = ws.lint();
    assert!(
        findings.is_empty(),
        "simlint reported {} finding(s) over {} files:\n{}",
        findings.len(),
        ws.files.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

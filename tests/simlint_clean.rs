//! Workspace gate: `cargo test -q` fails if the tree stops linting
//! clean, so determinism regressions cannot land silently.

use std::process::Command;

#[test]
fn workspace_passes_simlint() {
    let out = Command::new(env!("CARGO"))
        .args(["run", "-q", "-p", "simlint"])
        .output()
        .expect("spawn cargo run -p simlint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "simlint reported findings:\n{stdout}\n{stderr}"
    );
}

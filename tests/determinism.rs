//! Reproducibility guarantees: same seed ⇒ bit-identical campaign,
//! regardless of thread count; different seeds ⇒ different samples.

use pckpt::prelude::*;

fn xgc_params() -> SimParams {
    SimParams::paper_defaults(ModelKind::P2, Application::by_name("XGC").unwrap())
}

#[test]
fn campaigns_are_bit_reproducible() {
    let leads = LeadTimeModel::desh_default();
    let a = run_many(&xgc_params(), &leads, &RunnerConfig::new(12, 77));
    let b = run_many(&xgc_params(), &leads, &RunnerConfig::new(12, 77));
    assert_eq!(a.total_hours.mean().to_bits(), b.total_hours.mean().to_bits());
    assert_eq!(a.ft_ratio_pooled().to_bits(), b.ft_ratio_pooled().to_bits());
}

#[test]
fn thread_count_does_not_change_results() {
    let leads = LeadTimeModel::desh_default();
    let mut serial = RunnerConfig::new(9, 3);
    serial.threads = 1;
    let mut wide = RunnerConfig::new(9, 3);
    wide.threads = 8;
    let a = run_many(&xgc_params(), &leads, &serial);
    let b = run_many(&xgc_params(), &leads, &wide);
    assert_eq!(a.total_hours.mean().to_bits(), b.total_hours.mean().to_bits());
    assert_eq!(a.failures.sum().to_bits(), b.failures.sum().to_bits());
}

#[test]
fn per_run_streams_are_stable_under_campaign_size() {
    // Run i draws from master.split(i): growing the campaign must not
    // perturb earlier runs' traces — totals over 8 runs are a prefix of
    // totals over 16 runs.
    let leads = LeadTimeModel::desh_default();
    let small = run_many(&xgc_params(), &leads, &RunnerConfig::new(8, 21));
    let large = run_many(&xgc_params(), &leads, &RunnerConfig::new(16, 21));
    // The 8-run failure total must be ≤ and consistent with the 16-run
    // total (we cannot observe per-run values through the aggregate, but
    // the sums must nest: large includes small's runs).
    assert!(large.failures.sum() >= small.failures.sum());
    assert_eq!(small.runs(), 8);
    assert_eq!(large.runs(), 16);
}

#[test]
fn fluid_mode_is_bit_reproducible_across_threads() {
    // The fluid PFS path exercises the virtual-time flow link on every
    // checkpoint; its float arithmetic must be identical no matter how
    // runs are spread over workers.
    use pckpt::core::iosim::PfsMode;
    let leads = LeadTimeModel::desh_default();
    let mut params = xgc_params();
    params.pfs_mode = PfsMode::Fluid;
    let mut serial = RunnerConfig::new(6, 11);
    serial.threads = 1;
    let mut wide = RunnerConfig::new(6, 11);
    wide.threads = 4;
    let a = run_many(&params, &leads, &serial);
    let b = run_many(&params, &leads, &wide);
    assert_eq!(a.total_hours.mean().to_bits(), b.total_hours.mean().to_bits());
    assert_eq!(a.ft_ratio_pooled().to_bits(), b.ft_ratio_pooled().to_bits());
    assert_eq!(a.failures.sum().to_bits(), b.failures.sum().to_bits());
}

#[test]
fn campaign_digest_is_byte_identical_across_thread_counts() {
    // The work-stealing scheduler hands runs to whichever worker claims
    // them first, so the execution interleaving differs wildly between
    // thread counts — but run i always draws master.split(i) and the
    // aggregate fold happens in run order, so every figure-feeding
    // number must come out bit-for-bit the same.
    use pckpt::core::iosim::PfsMode;
    let leads = LeadTimeModel::desh_default();
    let mut params = xgc_params();
    params.pfs_mode = PfsMode::Fluid;
    let digest = |threads: usize| {
        let mut cfg = RunnerConfig::new(10, 41);
        cfg.threads = threads;
        let c = run_models(&params, &[ModelKind::B, ModelKind::P2], &leads, &cfg);
        assert_eq!(c.threads, threads, "requested thread count respected");
        let mut s = String::new();
        for (m, a) in c.models.iter().zip(&c.aggregates) {
            s.push_str(&format!(
                "{}:{:016x}-{:016x}-{:016x}-{:016x};",
                m.name(),
                a.total_hours.mean().to_bits(),
                a.ft_ratio_pooled().to_bits(),
                a.failures.sum().to_bits(),
                a.total_hours_quantile(0.9).to_bits(),
            ));
        }
        s
    };
    let one = digest(1);
    assert_eq!(one, digest(3), "3 workers must reproduce the serial digest");
    assert_eq!(one, digest(8), "8 workers must reproduce the serial digest");
}

/// Digest of a small fluid campaign, printed by the child invocation of
/// [`reports_are_identical_across_hasher_states`]. Everything that feeds
/// a report figure is folded in, at full bit precision.
fn campaign_digest() -> String {
    use pckpt::core::iosim::PfsMode;
    let leads = LeadTimeModel::desh_default();
    let mut params = xgc_params();
    params.pfs_mode = PfsMode::Fluid;
    let agg = run_many(&params, &leads, &RunnerConfig::new(6, 41));
    format!(
        "{:016x}-{:016x}-{:016x}-{:016x}",
        agg.total_hours.mean().to_bits(),
        agg.ft_ratio_pooled().to_bits(),
        agg.failures.sum().to_bits(),
        agg.total_hours_quantile(0.9).to_bits(),
    )
}

#[test]
fn reports_are_identical_across_hasher_states() {
    // Each std process seeds its SipHash RandomState differently, so any
    // surviving HashMap iteration order would show up as a digest
    // mismatch *between processes* even though in-process repetition
    // (campaigns_are_bit_reproducible) passes. The test re-invokes its
    // own binary twice and compares the childrens' digests.
    if std::env::var_os("PCKPT_DIGEST_CHILD").is_some() {
        println!("DIGEST={}", campaign_digest());
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let digest_of = |label: &str| {
        let out = std::process::Command::new(&exe)
            .args([
                "reports_are_identical_across_hasher_states",
                "--exact",
                "--nocapture",
                "--test-threads=1",
            ])
            .env("PCKPT_DIGEST_CHILD", label)
            .output()
            .expect("spawn child campaign");
        assert!(out.status.success(), "child run failed: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        // --nocapture may interleave libtest chatter on the same line;
        // take everything from the marker to the next whitespace.
        stdout
            .lines()
            .find_map(|l| {
                let at = l.find("DIGEST=")?;
                let rest = &l[at + "DIGEST=".len()..];
                Some(rest.split_whitespace().next().unwrap_or("").to_string())
            })
            .unwrap_or_else(|| panic!("no DIGEST line in child output:\n{stdout}"))
    };
    let a = digest_of("a");
    let b = digest_of("b");
    assert_eq!(
        a, b,
        "identical-seed campaigns diverged across process hasher states"
    );
    // Sanity: the parent process agrees too.
    assert_eq!(a, campaign_digest());
}

#[test]
fn seeds_actually_matter() {
    let leads = LeadTimeModel::desh_default();
    let a = run_many(&xgc_params(), &leads, &RunnerConfig::new(10, 1));
    let b = run_many(&xgc_params(), &leads, &RunnerConfig::new(10, 2));
    assert_ne!(
        a.total_hours.mean().to_bits(),
        b.total_hours.mean().to_bits(),
        "different seeds must explore different fates"
    );
}

//! Reproducibility guarantees: same seed ⇒ bit-identical campaign,
//! regardless of thread count; different seeds ⇒ different samples.

use pckpt::prelude::*;

fn xgc_params() -> SimParams {
    SimParams::paper_defaults(ModelKind::P2, Application::by_name("XGC").unwrap())
}

#[test]
fn campaigns_are_bit_reproducible() {
    let leads = LeadTimeModel::desh_default();
    let a = run_many(&xgc_params(), &leads, &RunnerConfig::new(12, 77));
    let b = run_many(&xgc_params(), &leads, &RunnerConfig::new(12, 77));
    assert_eq!(a.total_hours.mean().to_bits(), b.total_hours.mean().to_bits());
    assert_eq!(a.ft_ratio_pooled().to_bits(), b.ft_ratio_pooled().to_bits());
}

#[test]
fn thread_count_does_not_change_results() {
    let leads = LeadTimeModel::desh_default();
    let mut serial = RunnerConfig::new(9, 3);
    serial.threads = 1;
    let mut wide = RunnerConfig::new(9, 3);
    wide.threads = 8;
    let a = run_many(&xgc_params(), &leads, &serial);
    let b = run_many(&xgc_params(), &leads, &wide);
    assert_eq!(a.total_hours.mean().to_bits(), b.total_hours.mean().to_bits());
    assert_eq!(a.failures.sum().to_bits(), b.failures.sum().to_bits());
}

#[test]
fn per_run_streams_are_stable_under_campaign_size() {
    // Run i draws from master.split(i): growing the campaign must not
    // perturb earlier runs' traces — totals over 8 runs are a prefix of
    // totals over 16 runs.
    let leads = LeadTimeModel::desh_default();
    let small = run_many(&xgc_params(), &leads, &RunnerConfig::new(8, 21));
    let large = run_many(&xgc_params(), &leads, &RunnerConfig::new(16, 21));
    // The 8-run failure total must be ≤ and consistent with the 16-run
    // total (we cannot observe per-run values through the aggregate, but
    // the sums must nest: large includes small's runs).
    assert!(large.failures.sum() >= small.failures.sum());
    assert_eq!(small.runs(), 8);
    assert_eq!(large.runs(), 16);
}

#[test]
fn fluid_mode_is_bit_reproducible_across_threads() {
    // The fluid PFS path exercises the virtual-time flow link on every
    // checkpoint; its float arithmetic must be identical no matter how
    // runs are spread over workers.
    use pckpt::core::iosim::PfsMode;
    let leads = LeadTimeModel::desh_default();
    let mut params = xgc_params();
    params.pfs_mode = PfsMode::Fluid;
    let mut serial = RunnerConfig::new(6, 11);
    serial.threads = 1;
    let mut wide = RunnerConfig::new(6, 11);
    wide.threads = 4;
    let a = run_many(&params, &leads, &serial);
    let b = run_many(&params, &leads, &wide);
    assert_eq!(a.total_hours.mean().to_bits(), b.total_hours.mean().to_bits());
    assert_eq!(a.ft_ratio_pooled().to_bits(), b.ft_ratio_pooled().to_bits());
    assert_eq!(a.failures.sum().to_bits(), b.failures.sum().to_bits());
}

#[test]
fn seeds_actually_matter() {
    let leads = LeadTimeModel::desh_default();
    let a = run_many(&xgc_params(), &leads, &RunnerConfig::new(10, 1));
    let b = run_many(&xgc_params(), &leads, &RunnerConfig::new(10, 2));
    assert_ne!(
        a.total_hours.mean().to_bits(),
        b.total_hours.mean().to_bits(),
        "different seeds must explore different fates"
    );
}

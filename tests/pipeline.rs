//! Cross-crate end-to-end tests: logs → chain mining → lead-time model →
//! failure traces → C/R simulation → aggregation.

use pckpt::failure::chains::{ChainAnalyzer, LogGenerator};
use pckpt::prelude::*;

#[test]
fn full_pipeline_from_logs_to_campaign() {
    // 1. Synthesize logs and mine them.
    let mut rng = SimRng::seed_from(1234);
    let (log, truth) = LogGenerator::desh_default().generate(&mut rng, 3_000_000.0, 256, 700);
    let report = ChainAnalyzer::desh_default().analyze(&log);
    assert!(report.chains.len() as f64 > 0.95 * truth.len() as f64);

    // 2. Build the mined model and check it against the design model.
    let labels: Vec<(u32, &'static str)> = LeadTimeModel::desh_default()
        .sequences()
        .iter()
        .map(|s| (s.id, s.label))
        .collect();
    let mined = report.to_leadtime_model(&labels);
    let design = LeadTimeModel::desh_default();
    assert!((mined.mean_secs() - design.mean_secs()).abs() / design.mean_secs() < 0.2);

    // 3. Run a campaign under the mined model; paper shape must survive
    //    the mining noise.
    let app = Application::by_name("XGC").unwrap();
    let params = SimParams::paper_defaults(ModelKind::B, app);
    let c = run_models(
        &params,
        &[ModelKind::B, ModelKind::P2],
        &mined,
        &RunnerConfig::new(80, 99),
    );
    let reduction = c.reduction(ModelKind::P2, ModelKind::B).unwrap();
    assert!(
        reduction > 35.0,
        "P2 with a mined lead model must still pay off, got {reduction}%"
    );
}

#[test]
fn traces_respect_application_and_distribution() {
    let leads = LeadTimeModel::desh_default();
    let predictor = Predictor::aarohi_default();
    for app in &TABLE_I {
        let params = SimParams::paper_defaults(ModelKind::P2, *app);
        let cfg = TraceConfig::new(params.distribution, app.nodes, 2000.0)
            .with_projection(params.projection);
        let mut rng = SimRng::seed_from(5);
        let trace = FailureTrace::generate(&cfg, &leads, &predictor, &mut rng);
        assert!(trace.failures.iter().all(|f| (f.node as u64) < app.nodes));
        assert!(trace
            .failures
            .windows(2)
            .all(|w| w[0].time_hours <= w[1].time_hours));
    }
}

#[test]
fn run_results_satisfy_accounting_invariant() {
    // Every simulated run must decompose wall time exactly into
    // ideal + checkpoint + LM slowdown + recomputation + recovery.
    let leads = LeadTimeModel::desh_default();
    for app_name in ["CHIMERA", "POP"] {
        let app = Application::by_name(app_name).unwrap();
        for model in ModelKind::ALL {
            let params = SimParams::paper_defaults(model, app);
            let cfg = TraceConfig::new(
                params.distribution,
                app.nodes,
                app.compute_hours * params.horizon_factor,
            )
            .with_projection(params.projection);
            for seed in 0..5u64 {
                let mut rng = SimRng::seed_from(seed);
                let trace =
                    FailureTrace::generate(&cfg, &leads, &params.predictor, &mut rng);
                let result = pckpt::core::CrSim::new(params.clone(), trace, &leads).run();
                assert!(
                    result.accounting_residual_secs().abs() < 1.0,
                    "{app_name}/{model}: residual {}s",
                    result.accounting_residual_secs()
                );
                assert!(result.wall_secs >= result.ideal_secs);
                let ft = result.ledger.ft_ratio();
                assert!((0.0..=1.0).contains(&ft));
            }
        }
    }
}

#[test]
fn fluid_pfs_mode_preserves_invariants_and_pckpt_shape() {
    use pckpt::core::iosim::PfsMode;
    let leads = LeadTimeModel::desh_default();
    let app = Application::by_name("XGC").unwrap();
    let mut params = SimParams::paper_defaults(ModelKind::B, app);
    params.pfs_mode = PfsMode::Fluid;
    let c = run_models(
        &params,
        &[ModelKind::B, ModelKind::P1, ModelKind::P2],
        &leads,
        &RunnerConfig::new(60, 123),
    );
    let b = c.get(ModelKind::B).unwrap();
    let p1 = c.get(ModelKind::P1).unwrap();
    let p2 = c.get(ModelKind::P2).unwrap();
    // The paper's shape survives genuine I/O contention.
    assert!(p1.reduction_vs(b) > 20.0);
    assert!(p2.reduction_vs(b) > p1.reduction_vs(b));
    assert!(
        p1.ft_ratio_pooled() > 0.7,
        "drain suspension must keep p-ckpt's FT ratio, got {}",
        p1.ft_ratio_pooled()
    );
}

#[test]
fn io_model_consistency_across_crates() {
    // The latencies the C/R models derive must match direct I/O queries.
    let app = Application::by_name("S3D").unwrap();
    let params = SimParams::paper_defaults(ModelKind::P1, app);
    let per_node = app.checkpoint_per_node();
    assert_eq!(params.per_node_bytes(), per_node);
    assert!(
        (params.bb_write_secs() - params.io.bb.write_secs(per_node)).abs() < 1e-9
    );
    // Phase-1 single-writer time is below the collective commit time for
    // any multi-node app — the premise of prioritization.
    let single = params.io.pfs.single_node_write_secs(per_node);
    let all = params.io.pfs.write_secs(app.nodes, per_node);
    assert!(single < all);
}

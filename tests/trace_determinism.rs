//! Trace-determinism regression tests.
//!
//! Two guarantees are pinned here:
//!
//! 1. **On/off equivalence** — compiling the `trace` feature in or out
//!    must not change any simulated number. The campaign digest below is
//!    a committed golden asserted under *both* feature settings (this
//!    file is compiled twice by `scripts/ci.sh`); if enabling the
//!    recorder perturbed RNG draws, event ordering, or float math, the
//!    two builds would disagree with the constant.
//! 2. **Stream stability** — with `trace` enabled, the structured event
//!    stream of a fixed-seed run is itself deterministic: its FNV digest
//!    matches a committed golden, in both PFS modes. Any re-ordering of
//!    event dispatch, flow-wave completion, or protocol phases shows up
//!    here before it shows up in an aggregate.
//!
//! Regenerate goldens after an *intentional* semantic change with:
//! `cargo test --test trace_determinism -- --nocapture` (the failing
//! assertions print the measured values).

use pckpt::core::iosim::PfsMode;
use pckpt::prelude::*;

mod shard_common;

/// Child entry point for [`sharded_grid_digest_matches_golden`] (see
/// `shard_common::maybe_run_shard_child`).
#[test]
fn shard_child_entry() {
    let _ = shard_common::maybe_run_shard_child();
}

/// Golden digest of the 12-run XGC campaign below — identical with and
/// without the `trace` feature.
const GOLDEN_CAMPAIGN_DIGEST: &str = "B:40134339b68338cd-0000000000000000-4041800000000000;\
     P2:3ff84e8dbc526410-3fed41d41d41d41d-4041800000000000;\
     B:40134339b68338cd-0000000000000000-4041800000000000;\
     P2:3ff84847020395d3-3fed41d41d41d41d-4041800000000000;";

/// Golden digest of the 3-cell lead-scale grid below. The cells share
/// one scale-invariant trace group, so this constant also pins the
/// grid engine's cross-cell trace reuse and lead-blind B-lane
/// deduplication: a change to either would shift which cached state
/// feeds which lane and drift a cell digest before anything else.
const GOLDEN_GRID_DIGEST: &str = "XGC@1.5/B:40134339b68338cd-0000000000000000-4041800000000000;\
     XGC@1.5/P2:3ff519dddf7a889d-3fed41d41d41d41d-4041800000000000;\
     XGC@1/B:40134339b68338cd-0000000000000000-4041800000000000;\
     XGC@1/P2:3ff84e8dbc526410-3fed41d41d41d41d-4041800000000000;\
     XGC@0.5/B:40134339b68338cd-0000000000000000-4041800000000000;\
     XGC@0.5/P2:40004dee08fa5a35-3feb6db6db6db6db-4041800000000000;";

fn xgc_params(mode: PfsMode) -> SimParams {
    let app = Application::by_name("XGC").expect("Table I app");
    let mut params = SimParams::paper_defaults(ModelKind::P2, app);
    params.pfs_mode = mode;
    params
}

/// Bit-exact digest of everything figure-feeding in a small two-model,
/// two-mode campaign.
fn campaign_digest() -> String {
    let leads = LeadTimeModel::desh_default();
    let mut s = String::new();
    for mode in [PfsMode::Analytic, PfsMode::Fluid] {
        let c = run_models(
            &xgc_params(mode),
            &[ModelKind::B, ModelKind::P2],
            &leads,
            &RunnerConfig::new(12, 61),
        );
        for (m, a) in c.models.iter().zip(&c.aggregates) {
            s.push_str(&format!(
                "{}:{:016x}-{:016x}-{:016x};",
                m.name(),
                a.total_hours.mean().to_bits(),
                a.ft_ratio_pooled().to_bits(),
                a.failures.sum().to_bits(),
            ));
        }
    }
    s
}

/// Same digest format over a grid sweep: three XGC cells at different
/// lead scales through one `run_grid` pool.
fn grid_digest() -> (String, usize) {
    let leads = LeadTimeModel::desh_default();
    let models = [ModelKind::B, ModelKind::P2];
    let cells: Vec<GridCell> = [1.5, 1.0, 0.5]
        .iter()
        .map(|&scale| {
            let mut p = xgc_params(PfsMode::Analytic);
            p.lead_scale = scale;
            GridCell::new(p, &models).with_label(format!("XGC@{scale}"))
        })
        .collect();
    let grid = run_grid(&cells, &leads, &RunnerConfig::new(12, 61));
    let mut s = String::new();
    for (label, c) in grid.labels.iter().zip(&grid.cells) {
        for (m, a) in c.models.iter().zip(&c.aggregates) {
            s.push_str(&format!(
                "{}/{}:{:016x}-{:016x}-{:016x};",
                label,
                m.name(),
                a.total_hours.mean().to_bits(),
                a.ft_ratio_pooled().to_bits(),
                a.failures.sum().to_bits(),
            ));
        }
    }
    (s, grid.trace_groups)
}

#[test]
fn campaign_digest_matches_golden_with_and_without_trace() {
    let digest = campaign_digest();
    assert_eq!(
        digest, GOLDEN_CAMPAIGN_DIGEST,
        "campaign digest drifted (trace feature {}abled)",
        if cfg!(feature = "trace") { "en" } else { "dis" }
    );
}

#[test]
fn grid_digest_matches_golden_with_and_without_trace() {
    let (digest, trace_groups) = grid_digest();
    assert_eq!(
        trace_groups, 1,
        "lead-scale-only cells must collapse into one trace group"
    );
    assert_eq!(
        digest, GOLDEN_GRID_DIGEST,
        "grid digest drifted (trace feature {}abled)",
        if cfg!(feature = "trace") { "en" } else { "dis" }
    );
}

/// The same 3-cell grid sharded across 2 subprocesses must reproduce
/// [`GOLDEN_GRID_DIGEST`] — the committed constant, not merely the
/// in-process run — under both `trace` feature settings (this file is
/// compiled twice by `scripts/ci.sh`, so the children inherit whichever
/// feature set the parent was built with).
#[test]
fn sharded_grid_digest_matches_golden() {
    use pckpt::core::{run_grid_sharded_opts, ShardOptions};
    let recipe = "golden|XGC|1.5,1,0.5|B,P2";
    let cells = shard_common::cells_from_recipe(recipe).unwrap();
    let leads = LeadTimeModel::desh_default();
    let launcher = shard_common::launcher_for("shard_child_entry", recipe);
    let grid = run_grid_sharded_opts(
        &cells,
        &leads,
        &RunnerConfig::new(12, 61),
        &ShardOptions::new(2),
        &launcher,
        None,
    )
    .expect("sharded golden grid");
    assert_eq!(grid.shard_meta.expect("sharded meta").shards, 2);
    let mut s = String::new();
    for (label, c) in grid.labels.iter().zip(&grid.cells) {
        for (m, a) in c.models.iter().zip(&c.aggregates) {
            s.push_str(&format!(
                "{}/{}:{:016x}-{:016x}-{:016x};",
                label,
                m.name(),
                a.total_hours.mean().to_bits(),
                a.ft_ratio_pooled().to_bits(),
                a.failures.sum().to_bits(),
            ));
        }
    }
    assert_eq!(
        s, GOLDEN_GRID_DIGEST,
        "sharded grid digest drifted from the committed golden \
         (trace feature {}abled)",
        if cfg!(feature = "trace") { "en" } else { "dis" }
    );
}

/// Golden digest of the adaptive variance-reduction grid below: the
/// per-cell run counts the CI stopping rule settles on, then the usual
/// per-lane digests. Pinned under both `trace` feature settings and
/// every thread count — the adaptive fold runs on the main thread in
/// (cell, model, run) order, so batch scheduling and stopping decisions
/// are thread-invariant by construction.
const GOLDEN_ADAPTIVE_DIGEST: &str = "runs[24,16,16]\
     XGC@1.5/B:4011b6bf067d724d-0000000000000000-40513fffffffffff;\
     XGC@1.5/P2:3ff7390d0f8dc4eb-3feca81e9131abed-4050c00000000002;\
     XGC@1/B:40115eb2fae2f990-0000000000000000-4046ffffffffffff;\
     XGC@1/P2:3ffb1d414e932cfd-3fec71c71c71c71c-4046800000000000;\
     XGC@0.5/B:40115eb2fae2f990-0000000000000000-4046ffffffffffff;\
     XGC@0.5/P2:40022cbe64c40fbc-3fea4fa4fa4fa4fa-4046800000000000;";

#[test]
fn adaptive_grid_digest_matches_golden_with_and_without_trace() {
    use pckpt::core::{AdaptiveConfig, VrConfig};
    let leads = LeadTimeModel::desh_default();
    let models = [ModelKind::B, ModelKind::P2];
    let cells: Vec<GridCell> = [1.5, 1.0, 0.5]
        .iter()
        .map(|&scale| {
            let mut p = xgc_params(PfsMode::Analytic);
            p.lead_scale = scale;
            GridCell::new(p, &models).with_label(format!("XGC@{scale}"))
        })
        .collect();
    let mut digests = Vec::new();
    for threads in [1, 3, 8] {
        let mut cfg = RunnerConfig::new(64, 61);
        cfg.threads = threads;
        cfg.vr = VrConfig {
            antithetic: true,
            strata: 4,
            adaptive: Some(AdaptiveConfig {
                rel_target: 0.2,
                batch: 8,
                max_runs: 64,
                ..AdaptiveConfig::default()
            }),
        };
        let grid = run_grid(&cells, &leads, &cfg);
        let mut s = format!(
            "runs[{}]",
            grid.cell_runs
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        for (label, c) in grid.labels.iter().zip(&grid.cells) {
            for (m, a) in c.models.iter().zip(&c.aggregates) {
                s.push_str(&format!(
                    "{}/{}:{:016x}-{:016x}-{:016x};",
                    label,
                    m.name(),
                    a.total_hours.mean().to_bits(),
                    a.ft_ratio_pooled().to_bits(),
                    a.failures.sum().to_bits(),
                ));
            }
        }
        digests.push(s);
    }
    assert_eq!(digests[0], digests[1], "adaptive grid diverged 1 vs 3 threads");
    assert_eq!(digests[0], digests[2], "adaptive grid diverged 1 vs 8 threads");
    println!("adaptive grid digest: {}", digests[0]);
    assert_eq!(
        digests[0], GOLDEN_ADAPTIVE_DIGEST,
        "adaptive grid digest drifted (trace feature {}abled)",
        if cfg!(feature = "trace") { "en" } else { "dis" }
    );
}

#[cfg(not(feature = "trace"))]
mod trace_off {
    use super::*;

    #[test]
    fn recorder_is_inert_without_the_feature() {
        // The ZST recorder captures nothing; record_run still produces a
        // valid result over the same RNG draws.
        let leads = LeadTimeModel::desh_default();
        let (result, recording) =
            pckpt::core::record_run(&xgc_params(PfsMode::Analytic), &leads, 61, 0, 1 << 16);
        assert!(result.ledger.total_overhead_secs() >= 0.0);
        assert!(recording.is_empty());
        assert_eq!(recording.dropped, 0);
    }
}

#[cfg(feature = "trace")]
mod trace_on {
    use super::*;
    use pckpt::core::obs::{kind, Recording, NO_PARENT};
    use pckpt::core::record_run;

    /// Golden FNV digests of the structured event stream of run 0,
    /// seed 61, XGC/P2, per PFS mode.
    const GOLDEN_STREAM_ANALYTIC: &str = "071d2cbc81e5d175";
    const GOLDEN_STREAM_FLUID: &str = "978dee2e3cf5bf3d";

    fn record(mode: PfsMode, seed: u64) -> Recording {
        let leads = LeadTimeModel::desh_default();
        let (_, recording) = record_run(&xgc_params(mode), &leads, seed, 0, 1 << 20);
        assert_eq!(recording.dropped, 0, "ring too small for a golden run");
        recording
    }

    #[test]
    fn event_stream_digest_matches_golden_analytic() {
        let rec = record(PfsMode::Analytic, 61);
        assert!(!rec.is_empty());
        assert_eq!(
            rec.digest_hex(),
            GOLDEN_STREAM_ANALYTIC,
            "analytic event stream drifted ({} events)",
            rec.len()
        );
    }

    #[test]
    fn event_stream_digest_matches_golden_fluid() {
        let rec = record(PfsMode::Fluid, 61);
        assert!(!rec.is_empty());
        assert_eq!(
            rec.digest_hex(),
            GOLDEN_STREAM_FLUID,
            "fluid event stream drifted ({} events)",
            rec.len()
        );
    }

    #[test]
    fn recording_is_reproducible_and_seed_sensitive() {
        let a = record(PfsMode::Analytic, 61);
        let b = record(PfsMode::Analytic, 61);
        assert_eq!(a.digest(), b.digest(), "same seed must replay bit-identically");
        let c = record(PfsMode::Analytic, 62);
        assert_ne!(a.digest(), c.digest(), "different seeds must diverge");
        let d = a.first_divergence(&c).expect("different seeds diverge");
        assert_eq!(d.index, 0, "seeds differ from the very first scheduled event");
    }

    #[test]
    fn causal_parents_resolve_within_the_recording() {
        // Every non-root parent id must point at an earlier record; pops
        // must descend from scheds, protocol events from pops.
        let rec = record(PfsMode::Fluid, 61);
        for r in &rec.records {
            if r.parent == NO_PARENT {
                continue;
            }
            let parent = rec
                .by_seq(r.parent)
                .unwrap_or_else(|| panic!("dangling parent {} on seq {}", r.parent, r.seq));
            assert!(parent.seq < r.seq, "parent must precede child");
            if r.kind == kind::POP {
                assert_eq!(parent.kind, kind::SCHED, "a pop descends from its schedule");
            }
        }
        // The protocol actually exercised its phases in this run.
        let count = |k: u16| rec.records.iter().filter(|r| r.kind == k).count();
        assert!(count(kind::POP) > 0);
        assert!(count(kind::STATE) > 0);
        assert!(count(kind::BB_CKPT) > 0);
        assert!(count(kind::FLOW_WAVE) > 0, "fluid mode must emit flow waves");
    }

    #[test]
    fn chrome_trace_export_is_wellformed_json() {
        // No serde in the workspace: validate the exporter's output with
        // a bracket/quote scan plus a few structural anchors.
        let rec = record(PfsMode::Analytic, 61);
        let json = rec.to_chrome_trace("xgc-p2");
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"xgc-p2\""));
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for ch in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match ch {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced brackets in chrome trace export");
        }
        assert_eq!(depth, 0, "unbalanced brackets in chrome trace export");
        assert!(!in_str, "unterminated string in chrome trace export");
    }
}

//! The campaign service's three reuse layers, held to the repo's
//! digest oracle:
//!
//! * **cache equivalence** — a service-served sweep (cold, then warm
//!   through a fresh daemon instance) is bit-identical to a direct
//!   `run_grid_filtered` call, and the warm pass computes nothing;
//! * **single-flight** — N concurrent identical (and overlapping)
//!   requests perform exactly one computation per distinct cell;
//! * **crash/resume** — a daemon killed mid-sweep (via the
//!   `PCKPT_SERVICE_FAIL=crash:<k>` hook, same idiom as
//!   `PCKPT_SHARD_FAIL`) resumes to a bit-identical merged digest,
//!   re-executing only the cells that never hit the journal;
//! * **journal robustness** — a journal truncated or corrupted at an
//!   *arbitrary byte offset* still resumes to the golden digest
//!   (proptest), because recovery keeps exactly the longest valid
//!   record prefix and recomputes the rest.

use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use pckpt::core::run_grid_filtered;
use pckpt::prelude::*;
use pckpt_service::{
    grid_digest, parse_request, respond, serve_unix, submit_unix, Service, ServiceConfig,
};

static SCRATCH: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch root per call (counter + pid; no wall clock).
fn scratch_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pckpt-service-suite-{tag}-{}-{}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service_in(root: &PathBuf) -> Service {
    let mut cfg = ServiceConfig::in_dirs(Some(root.join("cache")), Some(root.join("state")));
    cfg.sync = pckpt_service::SyncPolicy::Off; // tests kill processes, not machines
    Service::open(cfg).expect("open service")
}

/// The suite's standard request: 2 apps × 2 scales, 2 models, small
/// fixed run count, single worker thread for cheap determinism.
const REQ: &str = r#"{"name":"suite","apps":["XGC","POP"],"scales":[1.2,0.6],
                     "models":["B","P2"],"runs":6,"seed":61,"threads":1}"#;

/// The digest a direct (service-free) run of `REQ` produces.
fn golden_digest() -> String {
    let req = parse_request(REQ).expect("suite request parses");
    let leads = LeadTimeModel::desh_default();
    let grid = run_grid_filtered(&req.cells, &leads, &req.config, req.prefilter.as_ref());
    grid_digest(&grid).hex()
}

#[test]
fn cold_and_warm_service_match_direct_execution_bit_for_bit() {
    let root = scratch_root("equiv");
    let golden = golden_digest();
    let req = parse_request(REQ).unwrap();

    // Cold: everything computed, journaled, cached.
    let cold_service = service_in(&root);
    let cold = cold_service.execute(&req).expect("cold request");
    assert_eq!(cold.meta.computed_cells, 4);
    assert_eq!(cold.meta.cache_hits, 0);
    assert_eq!(grid_digest(&cold.grid).hex(), golden, "cold != direct");

    // Warm, through a *fresh* service instance (daemon restart): every
    // cell served from persisted frames, nothing computed.
    drop(cold_service);
    let warm = service_in(&root).execute(&req).expect("warm request");
    assert_eq!(warm.meta.computed_cells, 0, "warm pass must not simulate");
    assert_eq!(grid_digest(&warm.grid).hex(), golden, "warm != direct");

    // Warm cells are byte-identical on disk across the two passes:
    // content-addressing means the second pass never rewrote them.
    let cache = root.join("cache");
    let mut cells: Vec<PathBuf> = std::fs::read_dir(&cache)
        .expect("cache dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "cell"))
        .collect();
    cells.sort();
    assert_eq!(cells.len(), 4, "one frame per survivor cell");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn concurrent_identical_requests_compute_each_cell_exactly_once() {
    let root = scratch_root("flight");
    let service = Arc::new(service_in(&root));
    let n = 6;
    let mut handles = Vec::new();
    for _ in 0..n {
        let service = Arc::clone(&service);
        handles.push(std::thread::spawn(move || {
            let req = parse_request(REQ).unwrap();
            let out = service.execute(&req).expect("request");
            (grid_digest(&out.grid).hex(), out.meta.computed_cells)
        }));
    }
    let results: Vec<(String, u64)> = handles
        .into_iter()
        .map(|h| h.join().expect("request thread"))
        .collect();
    let golden = golden_digest();
    for (digest, _) in &results {
        assert_eq!(digest, &golden);
    }
    let total_computed: u64 = results.iter().map(|(_, c)| c).sum();
    assert_eq!(
        total_computed, 4,
        "4 distinct cells → exactly 4 computations across {n} identical requests"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn overlapping_requests_coalesce_shared_cells() {
    // Two *different* campaigns (different cell sets → different
    // journals, so they run concurrently) sharing the POP cells: the
    // shared cells must be computed once globally, whichever request
    // wins the claim.
    let a = r#"{"name":"a","apps":["XGC","POP"],"scales":[1.0],"models":["B","P2"],
                "runs":6,"seed":61,"threads":1}"#;
    let b = r#"{"name":"b","apps":["POP","VULCAN"],"scales":[1.0],"models":["B","P2"],
                "runs":6,"seed":61,"threads":1}"#;
    let root = scratch_root("overlap");
    let service = Arc::new(service_in(&root));
    let mut handles = Vec::new();
    for text in [a, b, a, b] {
        let service = Arc::clone(&service);
        handles.push(std::thread::spawn(move || {
            let req = parse_request(text).unwrap();
            service.execute(&req).expect("request").meta.computed_cells
        }));
    }
    let total: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("request thread"))
        .sum();
    // XGC@1, POP@1, VULCAN@1 — three distinct cells across 4 requests.
    assert_eq!(total, 3, "shared cells must not be recomputed");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn socket_roundtrip_serves_and_coalesces() {
    let root = scratch_root("socket");
    let socket = root.join("pckptd.sock");
    std::fs::create_dir_all(&root).unwrap();
    let service = Arc::new(service_in(&root));
    let server = {
        let socket = socket.clone();
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_unix(&socket, service, Some(2)))
    };
    // Wait for the socket to appear (bounded spin; no clocks in prod
    // code — tests may sleep).
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let one = submit_unix(&socket, REQ).expect("first request");
    let two = submit_unix(&socket, REQ).expect("second request");
    server.join().expect("server thread").expect("serve_unix");
    assert!(one.ends_with("OK\n"), "response must terminate with OK: {one}");
    let digest_line = |body: &str| {
        body.lines()
            .find(|l| l.starts_with("DIGEST "))
            .map(str::to_string)
            .expect("DIGEST line")
    };
    assert_eq!(digest_line(&one), digest_line(&two));
    assert_eq!(
        digest_line(&one),
        format!("DIGEST {}", golden_digest()),
        "socket-served digest must equal direct execution"
    );
    // The warm response must report zero computed cells.
    let meta = two
        .lines()
        .find(|l| l.starts_with("SERVICE_JSON "))
        .expect("meta line");
    assert!(
        meta.contains("\"computed_cells\":0"),
        "warm socket request must be cache-served: {meta}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Child entry for the kill test: when the driver environment is
/// present, runs the suite request against the given directories
/// (crashing at the injected append via `PCKPT_SERVICE_FAIL`) instead
/// of asserting anything.
#[test]
fn service_child_entry() {
    let Ok(root) = std::env::var("PCKPT_SERVICE_SUITE_ROOT") else {
        return;
    };
    let root = PathBuf::from(root);
    let req = parse_request(REQ).unwrap();
    // Crash hook fires inside execute(); reaching the end means the
    // injection threshold exceeded the workload (driver asserts on
    // exit status, so just return).
    let _ = service_in(&root).execute(&req);
}

#[test]
fn killed_daemon_resumes_to_identical_digest_recomputing_only_the_tail() {
    let root = scratch_root("crash");
    std::fs::create_dir_all(&root).unwrap();
    let exe = std::env::current_exe().expect("test binary path");
    const CRASH_AFTER: u64 = 2;
    let status = Command::new(&exe)
        .args(["service_child_entry", "--exact", "--nocapture", "--test-threads=1"])
        .env("PCKPT_SERVICE_SUITE_ROOT", &root)
        .env("PCKPT_SERVICE_FAIL", format!("crash:{CRASH_AFTER}"))
        .status()
        .expect("spawn service child");
    assert!(
        !status.success(),
        "child must die at the injected crash, got {status:?}"
    );

    // The journal holds exactly the cells that completed pre-crash.
    let state = root.join("state");
    let journals: Vec<PathBuf> = std::fs::read_dir(&state)
        .expect("journal dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    assert_eq!(journals.len(), 1, "one campaign → one journal file");

    // Resume in-process: only the never-journaled cells re-execute,
    // and the merged digest equals the uninterrupted golden.
    let req = parse_request(REQ).unwrap();
    let resumed = service_in(&root).execute(&req).expect("resumed request");
    assert_eq!(
        resumed.meta.journal_recovered, CRASH_AFTER,
        "crash-surviving cells come from the journal"
    );
    assert_eq!(
        resumed.meta.computed_cells,
        4 - CRASH_AFTER,
        "only uncompleted cells re-execute"
    );
    assert_eq!(
        grid_digest(&resumed.grid).hex(),
        golden_digest(),
        "resumed campaign must be bit-identical to an uninterrupted one"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Builds a completed journal for `REQ` and returns its bytes plus the
/// journal path and root (kept alive for the resume pass).
fn completed_journal() -> (PathBuf, PathBuf, Vec<u8>) {
    let root = scratch_root("journal-prop");
    let req = parse_request(REQ).unwrap();
    let out = service_in(&root).execute(&req).expect("seed request");
    assert_eq!(out.meta.computed_cells, 4);
    let state = root.join("state");
    let journal = std::fs::read_dir(&state)
        .expect("journal dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .next()
        .expect("journal file");
    let bytes = std::fs::read(&journal).expect("journal bytes");
    (root, journal, bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Damage the journal anywhere — truncate to an arbitrary length
    /// or flip a byte at an arbitrary offset — and the resumed sweep
    /// still merges to the golden digest. Recovery may only lose
    /// *work* (cells recomputed), never *correctness*.
    #[test]
    fn journal_damage_at_any_offset_resumes_to_golden_digest(
        frac in 0.0f64..1.0,
        flip in any::<bool>(),
    ) {
        let (root, journal, bytes) = completed_journal();
        let offset = ((bytes.len() as f64 * frac) as usize).min(bytes.len().saturating_sub(1));
        let damaged = if flip {
            let mut d = bytes.clone();
            d[offset] ^= 0xFF;
            d
        } else {
            bytes[..offset].to_vec()
        };
        std::fs::write(&journal, &damaged).expect("write damaged journal");
        // Drop the cell cache so the resume leans on the journal alone
        // (otherwise every cell would trivially cache-hit).
        std::fs::remove_dir_all(root.join("cache")).expect("clear cache");

        let req = parse_request(REQ).unwrap();
        let resumed = service_in(&root).execute(&req).expect("resume over damage");
        prop_assert_eq!(grid_digest(&resumed.grid).hex(), golden_digest());
        prop_assert_eq!(
            resumed.meta.journal_recovered + resumed.meta.computed_cells
                + resumed.meta.cache_hits,
            4,
            "every cell is recovered, cache-served, or recomputed"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn adaptive_requests_bypass_the_reuse_layers() {
    let adaptive = r#"{"name":"adaptive","apps":["POP"],"scales":[1.0],
                       "models":["B","P2"],"runs":8,"seed":61,"threads":1,
                       "vr":"antithetic"}"#;
    // Fixed VR is cacheable; adaptive (set through RunnerConfig) is not.
    let root = scratch_root("adaptive");
    let service = service_in(&root);
    let mut req = parse_request(adaptive).unwrap();
    req.config.vr.adaptive = Some(pckpt::core::AdaptiveConfig {
        rel_target: 0.5,
        confidence: 0.95,
        batch: 4,
        max_runs: 8,
    });
    let out = service.execute(&req).expect("adaptive request");
    assert!(out.meta.uncached, "adaptive sweeps must not be cached");
    assert!(
        out.meta_json("adaptive").contains("\"uncached\":true"),
        "meta must flag the bypass"
    );
    // And nothing was journaled or cached for it.
    assert!(
        !root.join("state").exists()
            || std::fs::read_dir(root.join("state")).map(|d| d.count()).unwrap_or(0) == 0,
        "adaptive requests must leave no journal"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn respond_reports_errors_without_panicking() {
    let root = scratch_root("errors");
    let service = service_in(&root);
    for bad in ["not json", r#"{"app":"NOPE"}"#, r#"{}"#] {
        let body = respond(bad, &service);
        assert!(body.starts_with("ERR "), "{bad:?} → {body}");
        assert!(!body.contains("OK"));
    }
    let _ = std::fs::remove_dir_all(&root);
}

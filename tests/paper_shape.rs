//! Integration tests asserting the paper's headline *shape*: who wins,
//! in which regime, and by roughly what kind of margin. These are the
//! repository's contract with the paper — if a refactor breaks one of
//! these, it has changed the reproduced science, not just the code.
//!
//! Run counts are moderate (the experiment binaries use 400+); the
//! assertions are correspondingly tolerant.

use pckpt::prelude::*;

const RUNS: usize = 120;
const SEED: u64 = 424_242;

fn campaign(app: &str, models: &[ModelKind]) -> CampaignResult {
    campaign_scaled(app, models, 1.0)
}

fn campaign_scaled(app: &str, models: &[ModelKind], lead_scale: f64) -> CampaignResult {
    let app = Application::by_name(app).expect("Table I app");
    let mut params = SimParams::paper_defaults(ModelKind::B, app);
    params.lead_scale = lead_scale;
    let leads = LeadTimeModel::desh_default();
    run_models(&params, models, &leads, &RunnerConfig::new(RUNS, SEED))
}

#[test]
fn observation2_pckpt_models_beat_base_substantially() {
    // "p-ckpt (P1) and hybrid p-ckpt (P2) help reduce application overhead
    // over the base model by ≈42-55% and ≈53-65% on Summit."
    for app in ["CHIMERA", "XGC"] {
        let c = campaign(app, &[ModelKind::B, ModelKind::P1, ModelKind::P2]);
        let p1 = c.reduction(ModelKind::P1, ModelKind::B).unwrap();
        let p2 = c.reduction(ModelKind::P2, ModelKind::B).unwrap();
        assert!(p1 > 25.0, "{app}: P1 reduction {p1}% too small");
        assert!(p2 > 40.0, "{app}: P2 reduction {p2}% too small");
        assert!(p2 > p1, "{app}: hybrid must beat plain p-ckpt ({p2} vs {p1})");
    }
}

#[test]
fn safeguard_checkpointing_useless_for_large_apps() {
    // Sec. V: "safeguard checkpoints (M1) do not add any benefit" for
    // CHIMERA/XGC — their full-PFS commit takes minutes, leads are seconds.
    let c = campaign("CHIMERA", &[ModelKind::B, ModelKind::M1]);
    let m1 = c.reduction(ModelKind::M1, ModelKind::B).unwrap();
    assert!(
        m1.abs() < 8.0,
        "M1 must be within noise of B for CHIMERA, got {m1}%"
    );
    assert!(
        c.get(ModelKind::M1).unwrap().ft_ratio_pooled() < 0.05,
        "M1's FT ratio for CHIMERA must be near zero (Table II: 0.006)"
    );
}

#[test]
fn safeguard_helps_small_apps_recomputation_only() {
    // Sec. V: M1 "eliminates 85% of recomputation cost for smaller
    // applications" but leaves checkpoint overhead untouched.
    let c = campaign("POP", &[ModelKind::B, ModelKind::M1]);
    let b = c.get(ModelKind::B).unwrap();
    let m1 = c.get(ModelKind::M1).unwrap();
    let recomp_cut = 100.0 * (1.0 - m1.recomp_hours.mean() / b.recomp_hours.mean());
    assert!(recomp_cut > 55.0, "recomp cut {recomp_cut}% too small");
    let ckpt_change = (m1.ckpt_hours.mean() - b.ckpt_hours.mean()).abs() / b.ckpt_hours.mean();
    assert!(
        ckpt_change < 0.15,
        "M1 must not change checkpoint overhead materially"
    );
}

#[test]
fn pckpt_beats_lm_for_large_apps_and_loses_for_small() {
    // Observations 4 & 8.
    let large = campaign("CHIMERA", &[ModelKind::B, ModelKind::M2, ModelKind::P1]);
    let p1 = large.reduction(ModelKind::P1, ModelKind::B).unwrap();
    let m2 = large.reduction(ModelKind::M2, ModelKind::B).unwrap();
    assert!(
        p1 > m2,
        "CHIMERA: p-ckpt ({p1}%) must beat LM ({m2}%) at base leads"
    );
    let small = campaign("POP", &[ModelKind::B, ModelKind::M2, ModelKind::P1]);
    let p1s = small.reduction(ModelKind::P1, ModelKind::B).unwrap();
    let m2s = small.reduction(ModelKind::M2, ModelKind::B).unwrap();
    assert!(
        m2s > p1s,
        "POP: LM ({m2s}%) must beat p-ckpt ({p1s}%) — small apps favour LM"
    );
}

#[test]
fn ft_ratio_tables_ii_and_iv_anchors() {
    let c = campaign(
        "CHIMERA",
        &[ModelKind::M1, ModelKind::M2, ModelKind::P1, ModelKind::P2],
    );
    let ft = |m: ModelKind| c.get(m).unwrap().ft_ratio_pooled();
    // Table II/IV at base leads: M1 ≈ 0.006, M2 ≈ 0.47, P1/P2 ≈ 0.70.
    assert!(ft(ModelKind::M1) < 0.05, "M1 FT = {}", ft(ModelKind::M1));
    assert!(
        (0.3..=0.6).contains(&ft(ModelKind::M2)),
        "M2 FT = {}",
        ft(ModelKind::M2)
    );
    assert!(
        (0.55..=0.8).contains(&ft(ModelKind::P1)),
        "P1 FT = {}",
        ft(ModelKind::P1)
    );
    // "the FT ratios for P1 and P2 are almost equal for all applications".
    assert!(
        (ft(ModelKind::P1) - ft(ModelKind::P2)).abs() < 0.08,
        "P1 and P2 FT must track each other"
    );
}

#[test]
fn lead_time_collapse_hits_lm_before_pckpt() {
    // Observation 3/Fig. 7: at −50 % leads, M2's benefit for CHIMERA
    // collapses while P1 retains a solid FT ratio.
    let half = campaign_scaled("CHIMERA", &[ModelKind::M2, ModelKind::P1], 0.5);
    let m2 = half.get(ModelKind::M2).unwrap().ft_ratio_pooled();
    let p1 = half.get(ModelKind::P1).unwrap().ft_ratio_pooled();
    assert!(m2 < 0.2, "M2 FT at -50% leads must collapse, got {m2}");
    assert!(p1 > 0.4, "P1 FT at -50% leads must survive, got {p1}");
}

#[test]
fn observation6_p2_recomputes_more_than_p1() {
    // "P2 experiences a ≈11-27% increase in recomputation overhead
    // relative to the base model when compared to P1" — the price of the
    // stretched Eq.-2 interval.
    for app in ["CHIMERA", "XGC"] {
        let c = campaign(app, &[ModelKind::P1, ModelKind::P2]);
        let p1 = c.get(ModelKind::P1).unwrap().recomp_hours.mean();
        let p2 = c.get(ModelKind::P2).unwrap().recomp_hours.mean();
        assert!(
            p2 > p1,
            "{app}: P2 recomputation ({p2}h) must exceed P1's ({p1}h)"
        );
    }
}

#[test]
fn observation5_lm_cuts_checkpoint_overhead() {
    // Eq. 2's longer interval shows up as a checkpoint-overhead reduction
    // in P2 relative to P1 (which keeps Eq. 1).
    let c = campaign("XGC", &[ModelKind::P1, ModelKind::P2]);
    let p1 = c.get(ModelKind::P1).unwrap().ckpt_hours.mean();
    let p2 = c.get(ModelKind::P2).unwrap().ckpt_hours.mean();
    assert!(
        p2 < p1 * 0.85,
        "P2's checkpoint overhead ({p2}h) must be well below P1's ({p1}h)"
    );
}

#[test]
fn observation7_robust_across_failure_distributions() {
    // Fig. 6b: the ordering survives under the LANL distributions.
    for dist in FailureDistribution::ALL {
        let app = Application::by_name("XGC").unwrap();
        let params = SimParams::with_distribution(ModelKind::B, app, dist);
        let leads = LeadTimeModel::desh_default();
        let c = run_models(
            &params,
            &[ModelKind::B, ModelKind::M2, ModelKind::P2],
            &leads,
            &RunnerConfig::new(RUNS, SEED),
        );
        let p2 = c.reduction(ModelKind::P2, ModelKind::B).unwrap();
        let m2 = c.reduction(ModelKind::M2, ModelKind::B).unwrap();
        assert!(
            p2 > 35.0,
            "{}: P2 reduction {p2}% too small",
            dist.name
        );
        assert!(p2 > m2, "{}: P2 must beat M2", dist.name);
    }
}

#[test]
fn observation9_false_negatives_erode_all_models() {
    let app = Application::by_name("XGC").unwrap();
    let leads = LeadTimeModel::desh_default();
    let reduction_at = |fnr: f64| {
        let mut params = SimParams::paper_defaults(ModelKind::B, app);
        params.predictor = params.predictor.with_false_negative_rate(fnr);
        let c = run_models(
            &params,
            &[ModelKind::B, ModelKind::P2],
            &leads,
            &RunnerConfig::new(RUNS, SEED),
        );
        c.reduction(ModelKind::P2, ModelKind::B).unwrap()
    };
    let good = reduction_at(0.15);
    let bad = reduction_at(0.40);
    assert!(
        bad < good - 3.0,
        "P2's benefit must erode with the FN rate ({good}% → {bad}%)"
    );
}

// ---------------------------------------------------------------------
// Conformance suite: the EXPERIMENTS.md claim tables, encoded as tests.
//
// Each test below pins one published artifact (Table II, Table IV,
// Fig. 4, Fig. 8) to the bands EXPERIMENTS.md records for this
// implementation. The campaigns are larger (default 200 runs,
// `PCKPT_RUNS` to override) and seeded, so the bands can be tighter
// than the shape tests above without flaking.
// ---------------------------------------------------------------------

/// Conformance-campaign size: `PCKPT_RUNS` if set, else 200 (the
/// EXPERIMENTS.md numbers come from 400+-run sweeps; 200 keeps CI
/// honest but fast).
fn conf_runs() -> usize {
    std::env::var("PCKPT_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(200)
}

fn conf_campaign(app: &str, models: &[ModelKind], lead_scale: f64) -> CampaignResult {
    let app = Application::by_name(app).expect("Table I app");
    let mut params = SimParams::paper_defaults(ModelKind::B, app);
    params.lead_scale = lead_scale;
    let leads = LeadTimeModel::desh_default();
    run_models(&params, models, &leads, &RunnerConfig::new(conf_runs(), SEED))
}

#[test]
fn conformance_table2_ft_ratios_m1_m2() {
    // Table II at base leads (paper / measured): CHIMERA M1 0.006/0.00,
    // M2 0.47/0.50; XGC M1 0.04/0.07, M2 0.66/0.61; POP 0.84-0.85/0.85.
    let models = [ModelKind::M1, ModelKind::M2];
    let ft = |c: &CampaignResult, m: ModelKind| c.get(m).unwrap().ft_ratio_pooled();

    let chimera = conf_campaign("CHIMERA", &models, 1.0);
    let (m1, m2) = (ft(&chimera, ModelKind::M1), ft(&chimera, ModelKind::M2));
    assert!(m1 < 0.05, "CHIMERA M1 FT = {m1} (Table II: 0.006)");
    assert!((0.35..=0.65).contains(&m2), "CHIMERA M2 FT = {m2} (Table II: 0.47)");

    let xgc = conf_campaign("XGC", &models, 1.0);
    let (m1, m2) = (ft(&xgc, ModelKind::M1), ft(&xgc, ModelKind::M2));
    assert!(m1 < 0.20, "XGC M1 FT = {m1} (Table II: 0.04)");
    assert!((0.45..=0.75).contains(&m2), "XGC M2 FT = {m2} (Table II: 0.66)");

    let pop = conf_campaign("POP", &models, 1.0);
    let (m1, m2) = (ft(&pop, ModelKind::M1), ft(&pop, ModelKind::M2));
    assert!((0.75..=0.95).contains(&m1), "POP M1 FT = {m1} (Table II: 0.84)");
    assert!((0.75..=0.95).contains(&m2), "POP M2 FT = {m2} (Table II: 0.85)");

    // Model ordering within the table: LM dominates safeguarding for the
    // large applications, while for POP the safeguard alone already
    // mitigates nearly everything (M1 ≈ M2).
    assert!(ft(&chimera, ModelKind::M2) > ft(&chimera, ModelKind::M1) + 0.3);
    assert!(ft(&xgc, ModelKind::M2) > ft(&xgc, ModelKind::M1) + 0.3);
    assert!((ft(&pop, ModelKind::M2) - ft(&pop, ModelKind::M1)).abs() < 0.1);
}

#[test]
fn conformance_table4_ft_ratios_p1_p2() {
    // Table IV at base leads (paper / measured): CHIMERA 0.70/0.70,
    // XGC 0.84-0.83/0.83, POP 0.84-0.88/0.85 — and "the FT ratios for
    // P1 and P2 are almost equal for all applications".
    let models = [ModelKind::P1, ModelKind::P2];
    for (app, lo, hi) in [
        ("CHIMERA", 0.60, 0.80),
        ("XGC", 0.73, 0.93),
        ("POP", 0.75, 0.95),
    ] {
        let c = conf_campaign(app, &models, 1.0);
        let p1 = c.get(ModelKind::P1).unwrap().ft_ratio_pooled();
        let p2 = c.get(ModelKind::P2).unwrap().ft_ratio_pooled();
        assert!((lo..=hi).contains(&p1), "{app} P1 FT = {p1}, want {lo}..{hi}");
        assert!((lo..=hi).contains(&p2), "{app} P2 FT = {p2}, want {lo}..{hi}");
        assert!(
            (p1 - p2).abs() < 0.05,
            "{app}: P1 ({p1}) and P2 ({p2}) must be almost equal (Table IV)"
        );
    }
}

#[test]
fn conformance_fig4_m1_useless_for_large_apps_robust_for_small() {
    // Fig. 4: "M1 adds no benefit for CHIMERA/XGC" (their full-PFS
    // safeguard commit takes minutes; leads are seconds), while for POP
    // the recomputation cut is large *and robust to lead scaling*
    // (measured +74.3…+81.1 % across −50 %…+50 %).
    for app in ["CHIMERA", "XGC"] {
        let c = conf_campaign(app, &[ModelKind::B, ModelKind::M1], 1.0);
        let red = c.reduction(ModelKind::M1, ModelKind::B).unwrap();
        assert!(
            red.abs() < 10.0,
            "{app}: M1 must be within noise of B (Fig. 4), got {red}%"
        );
    }
    for scale in [0.5, 1.0, 1.5] {
        let c = conf_campaign("POP", &[ModelKind::B, ModelKind::M1], scale);
        let b = c.get(ModelKind::B).unwrap();
        let m1 = c.get(ModelKind::M1).unwrap();
        let cut = 100.0 * (1.0 - m1.recomp_hours.mean() / b.recomp_hours.mean());
        assert!(
            cut > 55.0,
            "POP at lead scale {scale}: M1 recomp cut {cut}% (Fig. 4: 74-81%)"
        );
    }
}

#[test]
fn conformance_fig8_lm_vs_pckpt_crossover() {
    // Fig. 8 plots, per application and lead scale, the difference
    // between LM's and p-ckpt's pooled FT contributions inside P2.
    // Claims: small apps stay LM-dominated (> +0.75) everywhere; the
    // difference shrinks with application size at base leads; p-ckpt
    // takes over as leads shrink, earliest for CHIMERA.
    let diff = |app: &str, scale: f64| {
        let c = conf_campaign(app, &[ModelKind::P2], scale);
        let a = c.get(ModelKind::P2).unwrap();
        a.ft_ratio_lm_pooled() - a.ft_ratio_pckpt_pooled()
    };

    for scale in [0.5, 1.0, 1.5] {
        let d = diff("POP", scale);
        assert!(d > 0.75, "POP at scale {scale}: LM-pckpt diff {d} must stay > 0.75");
    }

    let (chimera, xgc, pop) = (diff("CHIMERA", 1.0), diff("XGC", 1.0), diff("POP", 1.0));
    assert!(
        pop > xgc && pop > chimera,
        "diff must shrink with app size: POP {pop}, XGC {xgc}, CHIMERA {chimera}"
    );
    assert!(chimera > 0.0, "CHIMERA at base leads is still LM-dominated ({chimera})");

    let collapsed = diff("CHIMERA", 0.5);
    assert!(
        collapsed < 0.0,
        "CHIMERA at -50% leads: p-ckpt must take over (diff {collapsed})"
    );
}

#[test]
fn campaign_aggregates_carry_observability_metrics() {
    // The simobs per-run metrics must survive the campaign fold: event
    // counts and queue depth come from the runner, latency histograms
    // from the model. This is always-on (no `trace` feature needed).
    let c = conf_campaign("XGC", &[ModelKind::B, ModelKind::P2], 1.0);
    for (m, agg) in c.models.iter().zip(&c.aggregates) {
        let obs = &agg.obs;
        assert_eq!(obs.runs as usize, conf_runs());
        assert!(obs.events_handled > 0, "{m:?}: no events recorded");
        assert!(
            obs.events_scheduled >= obs.events_handled,
            "{m:?}: handled more events than were scheduled"
        );
        assert!(obs.events_per_run() > 10.0, "{m:?}: implausibly few events/run");
        assert!(obs.queue_depth_hwm > 1, "{m:?}: queue depth high-water mark missing");
        assert!(obs.lat_bb.count() > 0, "{m:?}: no burst-buffer checkpoint latencies");
    }
    // P2 runs p-ckpt rounds; the base model never does.
    let p2 = &c.get(ModelKind::P2).unwrap().obs;
    let b = &c.get(ModelKind::B).unwrap().obs;
    assert!(p2.lat_phase1.count() > 0, "P2 must record phase-1 commit latencies");
    assert_eq!(b.lat_phase1.count(), 0, "B must not record phase-1 commits");
}

#[test]
fn p1_recovery_share_is_visible_but_bounded() {
    // Observation 2: recovery contributes ≈2.5-6 % of P1's total overhead
    // (all-PFS restores after completed rounds), <1 % for the others.
    let c = campaign("XGC", &[ModelKind::B, ModelKind::P1]);
    let p1 = c.get(ModelKind::P1).unwrap();
    let share = p1.recovery_hours.mean() / p1.total_hours.mean();
    assert!(
        share < 0.12,
        "P1 recovery share must stay modest, got {share}"
    );
    let b = c.get(ModelKind::B).unwrap();
    let b_share = b.recovery_hours.mean() / b.total_hours.mean();
    assert!(b_share < 0.03, "B recovery share must be tiny, got {b_share}");
}

//! Shared plumbing for the cross-process shard suites.
//!
//! The shard protocol ships **results only** — configuration travels as
//! a *recipe*: a compact string (`PCKPT_SHARD_GRID`) from which parent
//! and child independently rebuild bit-identical `GridCell`s. Every test
//! binary that spawns shard children re-invokes itself with a single
//! `shard_child_entry` test selected; that entry calls
//! [`maybe_run_shard_child`], which notices the coordinator's
//! environment contract (`PCKPT_SHARD`, `PCKPT_SHARD_OUT`) and executes
//! one shard instead of asserting anything.
#![allow(dead_code)]

use pckpt::core::iosim::PfsMode;
use pckpt::core::{
    run_shard_child, shard_child_config, shard_spec_from_env, GridCell, GridResult, ModelKind,
    ShardLauncher,
};
use pckpt::prelude::*;

/// Environment variable carrying the grid recipe to shard children.
pub const RECIPE_ENV: &str = "PCKPT_SHARD_GRID";

fn parse_models(csv: &str) -> Result<Vec<ModelKind>, String> {
    csv.split(',')
        .map(|m| ModelKind::by_name(m).ok_or_else(|| format!("unknown model {m:?}")))
        .collect()
}

fn parse_scales(csv: &str) -> Result<Vec<f64>, String> {
    csv.split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad scale {s:?}")))
        .collect()
}

/// Rebuilds a grid from its recipe. Three shapes cover the suites:
///
/// * `sweep|<app>|<scales>|<models>` — `paper_defaults(B)` lead-scale
///   sweep, default labels (the `grid_equivalence` proptest shape);
/// * `golden|<app>|<scales>|<models>` — `paper_defaults(P2)` with
///   `PfsMode::Analytic` and `"{app}@{scale}"` labels (the
///   `trace_determinism` golden-grid shape);
/// * `xover|<app>@<alpha>[,...]|<models>` — `paper_defaults(B)` with
///   `lm_transfer_factor = alpha` and `"{app}/a{alpha}"` labels (the
///   prefilter crossover shape).
pub fn cells_from_recipe(recipe: &str) -> Result<Vec<GridCell>, String> {
    let parts: Vec<&str> = recipe.split('|').collect();
    let app_by_name = |name: &str| {
        Application::by_name(name).ok_or_else(|| format!("unknown application {name:?}"))
    };
    match parts.as_slice() {
        ["sweep", app, scales, models] => {
            let app = app_by_name(app)?;
            let models = parse_models(models)?;
            Ok(parse_scales(scales)?
                .into_iter()
                .map(|scale| {
                    let mut p = SimParams::paper_defaults(ModelKind::B, app);
                    p.lead_scale = scale;
                    GridCell::new(p, &models)
                })
                .collect())
        }
        ["golden", app, scales, models] => {
            let app = app_by_name(app)?;
            let models = parse_models(models)?;
            Ok(parse_scales(scales)?
                .into_iter()
                .map(|scale| {
                    let mut p = SimParams::paper_defaults(ModelKind::P2, app);
                    p.pfs_mode = PfsMode::Analytic;
                    p.lead_scale = scale;
                    GridCell::new(p, &models).with_label(format!("{}@{scale}", app.name))
                })
                .collect())
        }
        ["xover", cells, models] => {
            let models = parse_models(models)?;
            cells
                .split(',')
                .map(|spec| {
                    let (app, alpha) = spec
                        .split_once('@')
                        .ok_or_else(|| format!("xover cell {spec:?} is not APP@alpha"))?;
                    let alpha: f64 =
                        alpha.parse().map_err(|_| format!("bad alpha {alpha:?}"))?;
                    let mut p = SimParams::paper_defaults(ModelKind::B, app_by_name(app)?);
                    p.lm_transfer_factor = alpha;
                    Ok(GridCell::new(p, &models).with_label(format!("{app}/a{alpha}")))
                })
                .collect()
        }
        _ => Err(format!("unrecognized recipe {recipe:?}")),
    }
}

/// Child-side hook: when the coordinator's environment contract is
/// present, executes one shard of the recipe grid and returns `true`
/// (the caller's test then passes, leaving the frame file as the real
/// output). Returns `false` in ordinary test runs.
pub fn maybe_run_shard_child() -> bool {
    let Some(spec) = shard_spec_from_env() else {
        return false;
    };
    let recipe = std::env::var(RECIPE_ENV).expect("shard child needs PCKPT_SHARD_GRID");
    let cells = cells_from_recipe(&recipe).expect("shard child got a bad recipe");
    let leads = LeadTimeModel::desh_default();
    run_shard_child(&cells, &leads, &shard_child_config(), &spec).expect("shard child failed");
    true
}

/// A launcher that re-invokes this test binary with exactly one test —
/// the caller's `shard_child_entry` — selected, carrying `recipe` to the
/// child through the environment.
pub fn launcher_for(child_test: &str, recipe: &str) -> ShardLauncher {
    ShardLauncher::current_exe(vec![
        child_test.to_string(),
        "--exact".into(),
        "--nocapture".into(),
        "--test-threads=1".into(),
    ])
    .expect("test binary path")
    .with_env(RECIPE_ENV, recipe)
}

/// Everything figure-feeding in a grid result, as exact bits: per-lane
/// aggregate digests plus the per-cell attained CI half-widths (which
/// exercise the coordinator's replay of the VR tracker fold).
pub fn grid_digest(grid: &GridResult) -> String {
    let mut s = String::new();
    for (i, (label, c)) in grid.labels.iter().zip(&grid.cells).enumerate() {
        for (m, a) in c.models.iter().zip(&c.aggregates) {
            s.push_str(&format!(
                "{}/{}:{:016x}-{:016x}-{:016x}-{:016x}-{:016x};",
                label,
                m.name(),
                a.total_hours.mean().to_bits(),
                a.ckpt_hours.mean().to_bits(),
                a.recomp_hours.mean().to_bits(),
                a.ft_ratio_pooled().to_bits(),
                a.failures.sum().to_bits(),
            ));
        }
        s.push_str(&format!("ci[{i}]={:016x};", grid.cell_ci_rel[i].to_bits()));
    }
    s
}

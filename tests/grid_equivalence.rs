//! The grid engine's equivalence contract, property-tested end to end:
//! for arbitrary sweep shapes, seeds and run counts, every cell of a
//! [`run_grid`] sweep must be **bit-identical** to a standalone
//! [`run_models`] campaign over the same `(params, models, seed)` — at
//! every thread count. Cross-cell trace sharing, lead-blind
//! deduplication and work-stealing order may change how much work is
//! done and where, but never a single bit of what is computed.

use proptest::prelude::*;

use pckpt::core::{
    run_grid, run_grid_filtered, run_models, Aggregate, GridCell, ModelKind, Prefilter,
    RunnerConfig,
};
use pckpt::prelude::*;

/// Everything an aggregate folds, as exact bits.
fn digest(a: &Aggregate) -> [u64; 5] {
    [
        a.total_hours.mean().to_bits(),
        a.ckpt_hours.mean().to_bits(),
        a.recomp_hours.mean().to_bits(),
        a.ft_ratio_pooled().to_bits(),
        a.failures.sum().to_bits(),
    ]
}

fn arb_models() -> impl Strategy<Value = Vec<ModelKind>> {
    prop_oneof![
        Just(vec![ModelKind::B]),
        Just(vec![ModelKind::B, ModelKind::P2]),
        Just(vec![ModelKind::B, ModelKind::M2]),
        Just(vec![ModelKind::M1, ModelKind::P1]),
        Just(vec![ModelKind::B, ModelKind::M2, ModelKind::P2]),
    ]
}

/// 1–3 cells at distinct lead scales, sharing one trace group — the
/// shape that exercises the scale-invariant trace core and B-lane
/// deduplication together.
fn arb_cells() -> impl Strategy<Value = Vec<GridCell>> {
    let scale_set = prop_oneof![
        Just(vec![1.0]),
        Just(vec![1.5, 0.5]),
        Just(vec![1.1, 1.0, 0.9]),
        Just(vec![1.5, 1.1, 0.5]),
    ];
    (scale_set, arb_models()).prop_map(|(scales, models)| {
        let app = Application::by_name("XGC").unwrap();
        scales
            .into_iter()
            .map(|scale| {
                let mut p = SimParams::paper_defaults(ModelKind::B, app);
                p.lead_scale = scale;
                GridCell::new(p, &models)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_grid_cell_is_bit_identical_to_standalone_run_models(
        cells in arb_cells(),
        seed in 0u64..1_000_000,
        runs in 3usize..=5,
    ) {
        let leads = LeadTimeModel::desh_default();
        // The standalone reference for each cell (thread count is
        // irrelevant to results; use a fixed small pool).
        let mut reference_cfg = RunnerConfig::new(runs, seed);
        reference_cfg.threads = 2;
        let reference: Vec<Vec<[u64; 5]>> = cells
            .iter()
            .map(|cell| {
                run_models(&cell.params, &cell.models, &leads, &reference_cfg)
                    .aggregates
                    .iter()
                    .map(digest)
                    .collect()
            })
            .collect();

        for threads in [1usize, 3, 8] {
            let mut cfg = RunnerConfig::new(runs, seed);
            cfg.threads = threads;
            let grid = run_grid(&cells, &leads, &cfg);
            prop_assert_eq!(grid.cells.len(), cells.len());
            for (c, campaign) in grid.cells.iter().enumerate() {
                let got: Vec<[u64; 5]> = campaign.aggregates.iter().map(digest).collect();
                prop_assert_eq!(
                    &got,
                    &reference[c],
                    "cell {} diverged at {} threads (seed {}, runs {})",
                    c, threads, seed, runs
                );
            }
        }
    }
}

/// The crossover model set the analytic pre-filter is allowed to decide.
const CROSSOVER: &[ModelKind] = &[ModelKind::B, ModelKind::M2, ModelKind::P1];

fn crossover_cell(app: &str, alpha: f64) -> GridCell {
    let mut p = SimParams::paper_defaults(ModelKind::B, Application::by_name(app).unwrap());
    p.lm_transfer_factor = alpha;
    GridCell::new(p, CROSSOVER).with_label(format!("{app}/a{alpha}"))
}

/// A mixed confident/uncertain grid: CHIMERA at α = 3 (σ ≈ 0.50,
/// clearance ≈ 21 % → pruned for p-ckpt), POP (σ at the 0.90 cap →
/// pruned for LM), XGC (σ ≈ 0.616, inside the guard band around
/// `SIGMA_MAX` → simulated) and CHIMERA at α = 2.5 (inside the margin
/// band → simulated).
fn mixed_crossover_grid() -> Vec<GridCell> {
    vec![
        crossover_cell("CHIMERA", 3.0),
        crossover_cell("POP", 3.0),
        crossover_cell("XGC", 3.0),
        crossover_cell("CHIMERA", 2.5),
    ]
}

/// Tentpole digest oracle: with the pre-filter on, every cell it still
/// simulates is **bit-identical** to the same cell in an unfiltered
/// sweep — pruning changes which cells run, never what the survivors
/// compute.
#[test]
fn prefiltered_survivors_match_unfiltered_digests() {
    let leads = LeadTimeModel::desh_default();
    let cells = mixed_crossover_grid();
    let cfg = RunnerConfig::new(5, 33);

    let unfiltered = run_grid_filtered(&cells, &leads, &cfg, None);
    let filtered = run_grid_filtered(&cells, &leads, &cfg, Some(&Prefilter::default()));

    assert_eq!(filtered.cells_pruned, 2, "CHIMERA/a3 and POP prune");
    assert!(filtered.analytic_verdicts[0].unwrap().pckpt_wins);
    assert!(!filtered.analytic_verdicts[1].unwrap().pckpt_wins);
    assert!(filtered.analytic_verdicts[2].is_none(), "XGC guard band");
    assert!(filtered.analytic_verdicts[3].is_none(), "margin band");

    for (i, verdict) in filtered.analytic_verdicts.iter().enumerate() {
        let (f, u) = (filtered.cell(i), unfiltered.cell(i));
        if verdict.is_some() {
            assert!(f.aggregates.is_empty(), "pruned cells carry no aggregates");
        } else {
            let got: Vec<[u64; 5]> = f.aggregates.iter().map(digest).collect();
            let want: Vec<[u64; 5]> = u.aggregates.iter().map(digest).collect();
            assert_eq!(got, want, "surviving cell {i} diverged under the prefilter");
        }
    }
}

/// Paper-shape conformance: where the analytic tier *does* decide, its
/// verdict agrees with the simulated Table II/IV ordering — P1 beats M2
/// on total overhead where the closed form says p-ckpt wins, and M2
/// beats P1 where it says LM wins. The `DEFAULT_MARGIN` (15 % of α) is
/// the documented band that absorbs everything the closed form ignores
/// (pre-copy inefficiency, drain contention, round scheduling); cells
/// inside it are simulated, so only high-clearance verdicts are checked
/// here.
#[test]
fn analytic_verdicts_agree_with_simulated_crossover() {
    let leads = LeadTimeModel::desh_default();
    let cells = mixed_crossover_grid();
    let cfg = RunnerConfig::new(40, 7);

    let filtered = run_grid_filtered(&cells, &leads, &cfg, Some(&Prefilter::default()));
    let simulated = run_grid_filtered(&cells, &leads, &cfg, None);
    let mut checked = 0;
    for (i, verdict) in filtered.analytic_verdicts.iter().enumerate() {
        let Some(v) = verdict else { continue };
        let cell = simulated.cell(i);
        let p1 = cell.get(ModelKind::P1).unwrap().total_hours.mean();
        let m2 = cell.get(ModelKind::M2).unwrap().total_hours.mean();
        let sim_pckpt_wins = p1 < m2;
        assert_eq!(
            v.pckpt_wins, sim_pckpt_wins,
            "cell {} ({}): analytic verdict (sigma {:.3}, clearance {:.2}) \
             contradicts simulation (P1 {:.2} h vs M2 {:.2} h)",
            i, filtered.labels[i], v.sigma, v.clearance, p1, m2
        );
        checked += 1;
    }
    assert_eq!(checked, 2, "both confident verdicts must be validated");
}

//! The grid engine's equivalence contract, property-tested end to end:
//! for arbitrary sweep shapes, seeds and run counts, every cell of a
//! [`run_grid`] sweep must be **bit-identical** to a standalone
//! [`run_models`] campaign over the same `(params, models, seed)` — at
//! every thread count. Cross-cell trace sharing, lead-blind
//! deduplication and work-stealing order may change how much work is
//! done and where, but never a single bit of what is computed.

use proptest::prelude::*;

use pckpt::core::{run_grid, run_models, Aggregate, GridCell, RunnerConfig};
use pckpt::prelude::*;

/// Everything an aggregate folds, as exact bits.
fn digest(a: &Aggregate) -> [u64; 5] {
    [
        a.total_hours.mean().to_bits(),
        a.ckpt_hours.mean().to_bits(),
        a.recomp_hours.mean().to_bits(),
        a.ft_ratio_pooled().to_bits(),
        a.failures.sum().to_bits(),
    ]
}

fn arb_models() -> impl Strategy<Value = Vec<ModelKind>> {
    prop_oneof![
        Just(vec![ModelKind::B]),
        Just(vec![ModelKind::B, ModelKind::P2]),
        Just(vec![ModelKind::B, ModelKind::M2]),
        Just(vec![ModelKind::M1, ModelKind::P1]),
        Just(vec![ModelKind::B, ModelKind::M2, ModelKind::P2]),
    ]
}

/// 1–3 cells at distinct lead scales, sharing one trace group — the
/// shape that exercises the scale-invariant trace core and B-lane
/// deduplication together.
fn arb_cells() -> impl Strategy<Value = Vec<GridCell>> {
    let scale_set = prop_oneof![
        Just(vec![1.0]),
        Just(vec![1.5, 0.5]),
        Just(vec![1.1, 1.0, 0.9]),
        Just(vec![1.5, 1.1, 0.5]),
    ];
    (scale_set, arb_models()).prop_map(|(scales, models)| {
        let app = Application::by_name("XGC").unwrap();
        scales
            .into_iter()
            .map(|scale| {
                let mut p = SimParams::paper_defaults(ModelKind::B, app);
                p.lead_scale = scale;
                GridCell::new(p, &models)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_grid_cell_is_bit_identical_to_standalone_run_models(
        cells in arb_cells(),
        seed in 0u64..1_000_000,
        runs in 3usize..=5,
    ) {
        let leads = LeadTimeModel::desh_default();
        // The standalone reference for each cell (thread count is
        // irrelevant to results; use a fixed small pool).
        let mut reference_cfg = RunnerConfig::new(runs, seed);
        reference_cfg.threads = 2;
        let reference: Vec<Vec<[u64; 5]>> = cells
            .iter()
            .map(|cell| {
                run_models(&cell.params, &cell.models, &leads, &reference_cfg)
                    .aggregates
                    .iter()
                    .map(digest)
                    .collect()
            })
            .collect();

        for threads in [1usize, 3, 8] {
            let mut cfg = RunnerConfig::new(runs, seed);
            cfg.threads = threads;
            let grid = run_grid(&cells, &leads, &cfg);
            prop_assert_eq!(grid.cells.len(), cells.len());
            for (c, campaign) in grid.cells.iter().enumerate() {
                let got: Vec<[u64; 5]> = campaign.aggregates.iter().map(digest).collect();
                prop_assert_eq!(
                    &got,
                    &reference[c],
                    "cell {} diverged at {} threads (seed {}, runs {})",
                    c, threads, seed, runs
                );
            }
        }
    }
}

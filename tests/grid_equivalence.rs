//! The grid engine's equivalence contract, property-tested end to end:
//! for arbitrary sweep shapes, seeds and run counts, every cell of a
//! [`run_grid`] sweep must be **bit-identical** to a standalone
//! [`run_models`] campaign over the same `(params, models, seed)` — at
//! every thread count. Cross-cell trace sharing, lead-blind
//! deduplication and work-stealing order may change how much work is
//! done and where, but never a single bit of what is computed.

use proptest::prelude::*;

use pckpt::core::{
    run_grid, run_grid_filtered, run_grid_sharded_opts, run_models, Aggregate, GridCell,
    ModelKind, Prefilter, RunnerConfig, ShardOptions, VrConfig,
};
use pckpt::prelude::*;

mod shard_common;

/// Child entry point for the sharded suites below: under the
/// coordinator's environment contract this executes one shard and exits;
/// in a normal test run it is an inert pass.
#[test]
fn shard_child_entry() {
    let _ = shard_common::maybe_run_shard_child();
}

/// Everything an aggregate folds, as exact bits.
fn digest(a: &Aggregate) -> [u64; 5] {
    [
        a.total_hours.mean().to_bits(),
        a.ckpt_hours.mean().to_bits(),
        a.recomp_hours.mean().to_bits(),
        a.ft_ratio_pooled().to_bits(),
        a.failures.sum().to_bits(),
    ]
}

fn arb_models() -> impl Strategy<Value = Vec<ModelKind>> {
    prop_oneof![
        Just(vec![ModelKind::B]),
        Just(vec![ModelKind::B, ModelKind::P2]),
        Just(vec![ModelKind::B, ModelKind::M2]),
        Just(vec![ModelKind::M1, ModelKind::P1]),
        Just(vec![ModelKind::B, ModelKind::M2, ModelKind::P2]),
    ]
}

/// 1–3 cells at distinct lead scales, sharing one trace group — the
/// shape that exercises the scale-invariant trace core and B-lane
/// deduplication together.
fn arb_cells() -> impl Strategy<Value = Vec<GridCell>> {
    let scale_set = prop_oneof![
        Just(vec![1.0]),
        Just(vec![1.5, 0.5]),
        Just(vec![1.1, 1.0, 0.9]),
        Just(vec![1.5, 1.1, 0.5]),
    ];
    (scale_set, arb_models()).prop_map(|(scales, models)| {
        let app = Application::by_name("XGC").unwrap();
        scales
            .into_iter()
            .map(|scale| {
                let mut p = SimParams::paper_defaults(ModelKind::B, app);
                p.lead_scale = scale;
                GridCell::new(p, &models)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_grid_cell_is_bit_identical_to_standalone_run_models(
        cells in arb_cells(),
        seed in 0u64..1_000_000,
        runs in 3usize..=5,
    ) {
        let leads = LeadTimeModel::desh_default();
        // The standalone reference for each cell (thread count is
        // irrelevant to results; use a fixed small pool).
        let mut reference_cfg = RunnerConfig::new(runs, seed);
        reference_cfg.threads = 2;
        let reference: Vec<Vec<[u64; 5]>> = cells
            .iter()
            .map(|cell| {
                run_models(&cell.params, &cell.models, &leads, &reference_cfg)
                    .aggregates
                    .iter()
                    .map(digest)
                    .collect()
            })
            .collect();

        for threads in [1usize, 3, 8] {
            let mut cfg = RunnerConfig::new(runs, seed);
            cfg.threads = threads;
            let grid = run_grid(&cells, &leads, &cfg);
            prop_assert_eq!(grid.cells.len(), cells.len());
            for (c, campaign) in grid.cells.iter().enumerate() {
                let got: Vec<[u64; 5]> = campaign.aggregates.iter().map(digest).collect();
                prop_assert_eq!(
                    &got,
                    &reference[c],
                    "cell {} diverged at {} threads (seed {}, runs {})",
                    c, threads, seed, runs
                );
            }
        }
    }
}

/// Sweep-shaped recipes matching [`arb_cells`]'s shape space, plus the
/// variance-reduction configs the sharded fold must replay exactly.
fn arb_sharded_recipe() -> impl Strategy<Value = String> {
    let scales = prop_oneof![
        Just("1"),
        Just("1.5,0.5"),
        Just("1.1,1,0.9"),
        Just("1.5,1.1,0.5"),
    ];
    let models = prop_oneof![
        Just("B"),
        Just("B,P2"),
        Just("B,M2"),
        Just("M1,P1"),
        Just("B,M2,P2"),
    ];
    (scales, models).prop_map(|(s, m)| format!("sweep|XGC|{s}|{m}"))
}

/// Runs `recipe`'s grid through `run_grid_sharded_opts` at every
/// (shards, threads) combination and asserts each result is bit-identical
/// to the single-process reference under the same `vr` config.
fn assert_sharded_matches_single(recipe: &str, runs: usize, seed: u64, vr: VrConfig) {
    let cells = shard_common::cells_from_recipe(recipe).unwrap();
    let leads = LeadTimeModel::desh_default();
    let launcher = shard_common::launcher_for("shard_child_entry", recipe);
    let mut reference_cfg = RunnerConfig::new(runs, seed);
    reference_cfg.threads = 2;
    reference_cfg.vr = vr;
    let reference = shard_common::grid_digest(&run_grid_filtered(
        &cells,
        &leads,
        &reference_cfg,
        None,
    ));
    for shards in [1usize, 2, 4] {
        for threads in [1usize, 3] {
            let mut cfg = RunnerConfig::new(runs, seed);
            cfg.threads = threads;
            cfg.vr = vr;
            let grid = run_grid_sharded_opts(
                &cells,
                &leads,
                &cfg,
                &ShardOptions::new(shards),
                &launcher,
                None,
            )
            .unwrap_or_else(|e| panic!("{shards} shards / {threads} threads failed: {e}"));
            let meta = grid.shard_meta.expect("sharded runs report shard_meta");
            assert_eq!(meta.reexecutions, 0, "healthy children never re-execute");
            assert_eq!(
                shard_common::grid_digest(&grid),
                reference,
                "digest diverged at {shards} shards / {threads} threads \
                 (recipe {recipe}, seed {seed}, runs {runs}, vr {vr:?})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Tentpole oracle: for arbitrary sweep shapes, shard counts and
    /// thread counts — in both plain and variance-reduced trace modes —
    /// the coordinator's cross-process merge is bit-identical to the
    /// single-process fold.
    #[test]
    fn sharded_equals_single_process(
        recipe in arb_sharded_recipe(),
        seed in 0u64..1_000_000,
        runs in 3usize..=5,
    ) {
        assert_sharded_matches_single(&recipe, runs, seed, VrConfig::default());
        let vr = VrConfig {
            antithetic: true,
            strata: 2,
            adaptive: None,
        };
        assert_sharded_matches_single(&recipe, runs, seed, vr);
    }
}

/// The crossover model set the analytic pre-filter is allowed to decide.
const CROSSOVER: &[ModelKind] = &[ModelKind::B, ModelKind::M2, ModelKind::P1];

fn crossover_cell(app: &str, alpha: f64) -> GridCell {
    let mut p = SimParams::paper_defaults(ModelKind::B, Application::by_name(app).unwrap());
    p.lm_transfer_factor = alpha;
    GridCell::new(p, CROSSOVER).with_label(format!("{app}/a{alpha}"))
}

/// A mixed confident/uncertain grid: CHIMERA at α = 3 (σ ≈ 0.50,
/// clearance ≈ 21 % → pruned for p-ckpt), POP (σ at the 0.90 cap →
/// pruned for LM), XGC (σ ≈ 0.616, inside the guard band around
/// `SIGMA_MAX` → simulated) and CHIMERA at α = 2.5 (inside the margin
/// band → simulated).
fn mixed_crossover_grid() -> Vec<GridCell> {
    vec![
        crossover_cell("CHIMERA", 3.0),
        crossover_cell("POP", 3.0),
        crossover_cell("XGC", 3.0),
        crossover_cell("CHIMERA", 2.5),
    ]
}

/// Tentpole digest oracle: with the pre-filter on, every cell it still
/// simulates is **bit-identical** to the same cell in an unfiltered
/// sweep — pruning changes which cells run, never what the survivors
/// compute.
#[test]
fn prefiltered_survivors_match_unfiltered_digests() {
    let leads = LeadTimeModel::desh_default();
    let cells = mixed_crossover_grid();
    let cfg = RunnerConfig::new(5, 33);

    let unfiltered = run_grid_filtered(&cells, &leads, &cfg, None);
    let filtered = run_grid_filtered(&cells, &leads, &cfg, Some(&Prefilter::default()));

    assert_eq!(filtered.cells_pruned, 2, "CHIMERA/a3 and POP prune");
    assert!(filtered.analytic_verdicts[0].unwrap().pckpt_wins);
    assert!(!filtered.analytic_verdicts[1].unwrap().pckpt_wins);
    assert!(filtered.analytic_verdicts[2].is_none(), "XGC guard band");
    assert!(filtered.analytic_verdicts[3].is_none(), "margin band");

    for (i, verdict) in filtered.analytic_verdicts.iter().enumerate() {
        let (f, u) = (filtered.cell(i), unfiltered.cell(i));
        if verdict.is_some() {
            assert!(f.aggregates.is_empty(), "pruned cells carry no aggregates");
        } else {
            let got: Vec<[u64; 5]> = f.aggregates.iter().map(digest).collect();
            let want: Vec<[u64; 5]> = u.aggregates.iter().map(digest).collect();
            assert_eq!(got, want, "surviving cell {i} diverged under the prefilter");
        }
    }
}

/// Paper-shape conformance: where the analytic tier *does* decide, its
/// verdict agrees with the simulated Table II/IV ordering — P1 beats M2
/// on total overhead where the closed form says p-ckpt wins, and M2
/// beats P1 where it says LM wins. The `DEFAULT_MARGIN` (15 % of α) is
/// the documented band that absorbs everything the closed form ignores
/// (pre-copy inefficiency, drain contention, round scheduling); cells
/// inside it are simulated, so only high-clearance verdicts are checked
/// here.
#[test]
fn analytic_verdicts_agree_with_simulated_crossover() {
    let leads = LeadTimeModel::desh_default();
    let cells = mixed_crossover_grid();
    let cfg = RunnerConfig::new(40, 7);

    let filtered = run_grid_filtered(&cells, &leads, &cfg, Some(&Prefilter::default()));
    let simulated = run_grid_filtered(&cells, &leads, &cfg, None);
    let mut checked = 0;
    for (i, verdict) in filtered.analytic_verdicts.iter().enumerate() {
        let Some(v) = verdict else { continue };
        let cell = simulated.cell(i);
        let p1 = cell.get(ModelKind::P1).unwrap().total_hours.mean();
        let m2 = cell.get(ModelKind::M2).unwrap().total_hours.mean();
        let sim_pckpt_wins = p1 < m2;
        assert_eq!(
            v.pckpt_wins, sim_pckpt_wins,
            "cell {} ({}): analytic verdict (sigma {:.3}, clearance {:.2}) \
             contradicts simulation (P1 {:.2} h vs M2 {:.2} h)",
            i, filtered.labels[i], v.sigma, v.clearance, p1, m2
        );
        checked += 1;
    }
    assert_eq!(checked, 2, "both confident verdicts must be validated");
}

/// The crossover grid as a shard recipe (must rebuild
/// [`mixed_crossover_grid`] bit-identically in child processes).
const XOVER_RECIPE: &str = "xover|CHIMERA@3,POP@3,XGC@3,CHIMERA@2.5|B,M2,P1";

#[test]
fn recipe_rebuilds_the_crossover_grid() {
    let rebuilt = shard_common::cells_from_recipe(XOVER_RECIPE).unwrap();
    let original = mixed_crossover_grid();
    assert_eq!(rebuilt.len(), original.len());
    for (r, o) in rebuilt.iter().zip(&original) {
        assert_eq!(r.label, o.label);
        assert_eq!(r.models, o.models);
        assert_eq!(format!("{:?}", r.params), format!("{:?}", o.params));
    }
}

/// Sharding composes with the analytic pre-filter: the coordinator
/// prunes, shards only the survivors, and splices verdicts back in —
/// bit-identical to the in-process filtered sweep, including under
/// variance reduction.
#[test]
fn sharded_prefilter_matches_in_process() {
    let cells = shard_common::cells_from_recipe(XOVER_RECIPE).unwrap();
    let leads = LeadTimeModel::desh_default();
    let launcher = shard_common::launcher_for("shard_child_entry", XOVER_RECIPE);
    let pf = Prefilter::default();
    for vr in [
        VrConfig::default(),
        VrConfig {
            antithetic: true,
            strata: 2,
            adaptive: None,
        },
    ] {
        let mut cfg = RunnerConfig::new(5, 33);
        cfg.vr = vr;
        let reference = run_grid_filtered(&cells, &leads, &cfg, Some(&pf));
        for shards in [2usize, 4] {
            let grid = run_grid_sharded_opts(
                &cells,
                &leads,
                &cfg,
                &ShardOptions::new(shards),
                &launcher,
                Some(&pf),
            )
            .unwrap();
            assert_eq!(grid.cells_pruned, 2, "pruning is shard-invariant");
            assert_eq!(grid.analytic_verdicts, reference.analytic_verdicts);
            assert_eq!(
                shard_common::grid_digest(&grid),
                shard_common::grid_digest(&reference),
                "filtered digest diverged at {shards} shards (vr {vr:?})"
            );
        }
    }
}

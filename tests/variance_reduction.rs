//! Variance-reduction correctness: the estimator transforms behind
//! `PCKPT_VR` / `PCKPT_RUNS=auto` must not change *what* is estimated.
//!
//! Three contracts are pinned here:
//!
//! 1. **Marginal preservation** — antithetic reflection (`u → 1 − u`,
//!    inverse-CDF normals) changes the joint law across a pair but must
//!    leave every per-run marginal distribution exactly alone. KS
//!    one-sample proptests check the reflected Weibull, LogNormal and
//!    TruncatedNormal samplers against their analytic CDFs.
//! 2. **Stratified fold consistency** — a stratum-weighted fold of
//!    equal-probability strata is the same estimator as a flat merge
//!    when the data are identical, and stratified generation leaves the
//!    overall uniform law intact.
//! 3. **Engine determinism** — every VR mode (and adaptive allocation,
//!    including the per-cell run counts the stopping rule settles on)
//!    is bit-identical across 1/3/8 threads at the integration level,
//!    and antithetic pairing actually tightens the CI it reports.

use proptest::prelude::*;

use pckpt::core::{run_grid, AdaptiveConfig, GridPlan, GridWorker, VrConfig};
use pckpt::prelude::*;
use pckpt::simrng::dist::{Distribution, LogNormal, TruncatedNormal, Weibull};
use pckpt::simrng::{ks_one_sample, normal_cdf, PairedSummary, StratifiedSummary, Summary};

/// Draws `n` samples from `dist`, each from its own split stream (the
/// run structure), with antithetic reflection and inverse-CDF normals
/// active — exactly how an odd-indexed antithetic run samples.
fn reflected_samples<D: Distribution>(dist: &D, seed: u64, n: usize) -> Vec<f64> {
    let master = SimRng::seed_from(seed);
    (0..n)
        .map(|i| {
            let mut rng = master.split(i as u64);
            rng.set_inverse_normals(true);
            rng.set_reflected(true);
            dist.sample(&mut rng)
        })
        .collect()
}

// α = 0.001 keeps the exact-marginal property failing loudly on real
// drift (reflection preserves marginals *exactly*, so a bug shows up as
// D ≫ critical) while tolerating borderline sampling noise across the
// proptest case grid.
const KS_N: usize = 4000;
const KS_ALPHA: f64 = 0.001;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn reflected_weibull_marginal_is_preserved(
        seed in 1u64..1000,
        shape in 0.5f64..2.0,
        scale in 10.0f64..1000.0,
    ) {
        let w = Weibull::new(shape, scale);
        let samples = reflected_samples(&w, seed, KS_N);
        let r = ks_one_sample(&samples, |x| w.cdf(x));
        prop_assert!(
            r.same_distribution(KS_ALPHA),
            "reflected Weibull({shape}, {scale}) drifted: D = {}",
            r.statistic
        );
    }

    #[test]
    fn reflected_lognormal_marginal_is_preserved(
        seed in 1u64..1000,
        mu in -1.0f64..3.0,
        sigma in 0.2f64..1.5,
    ) {
        let d = LogNormal::new(mu, sigma);
        let samples = reflected_samples(&d, seed, KS_N);
        let r = ks_one_sample(&samples, |x: f64| {
            if x <= 0.0 { 0.0 } else { normal_cdf((x.ln() - mu) / sigma) }
        });
        prop_assert!(
            r.same_distribution(KS_ALPHA),
            "reflected LogNormal({mu}, {sigma}) drifted: D = {}",
            r.statistic
        );
    }

    #[test]
    fn reflected_truncated_normal_marginal_is_preserved(
        seed in 1u64..1000,
        mu in 5.0f64..60.0,
        sigma in 1.0f64..15.0,
    ) {
        // The lead-time mixture's component shape (Fig. 2a): a normal
        // truncated below. Rejection may consume different draw counts
        // under reflection; the marginal must still be exact.
        let lo = 0.5;
        let d = TruncatedNormal::new(mu, sigma, lo);
        let tail = 1.0 - normal_cdf((lo - mu) / sigma);
        let samples = reflected_samples(&d, seed, KS_N);
        let r = ks_one_sample(&samples, |x: f64| {
            if x < lo {
                0.0
            } else {
                (normal_cdf((x - mu) / sigma) - normal_cdf((lo - mu) / sigma)) / tail
            }
        });
        prop_assert!(
            r.same_distribution(KS_ALPHA),
            "reflected TruncatedNormal({mu}, {sigma}) drifted: D = {}",
            r.statistic
        );
    }

    #[test]
    fn stratum_weighted_fold_equals_flat_merge(seed in 1u64..500, k in 2usize..9) {
        // Identical data, two folds: round-robin into K equal-weight
        // strata vs one flat summary. Same estimator, same mean, and the
        // total spread reassembles within f64 tolerance.
        let master = SimRng::seed_from(seed);
        let mut rng = master.clone();
        let n = 40 * k; // balanced strata
        let values: Vec<f64> = (0..n).map(|_| rng.uniform01() * 7.0 + 1.0).collect();
        let mut flat = Summary::new();
        let mut strat = StratifiedSummary::equal_weights(k);
        for (i, &v) in values.iter().enumerate() {
            flat.push(v);
            strat.push(i % k, v);
        }
        let mut merged = Summary::new();
        for j in 0..k {
            merged.merge(strat.stratum(j));
        }
        prop_assert!((strat.mean() - flat.mean()).abs() < 1e-9 * flat.mean().abs());
        prop_assert!((merged.mean() - flat.mean()).abs() < 1e-9 * flat.mean().abs());
        prop_assert!((merged.variance() - flat.variance()).abs() < 1e-9 * flat.variance());
        prop_assert_eq!(merged.count(), flat.count());
    }
}

#[test]
fn stratified_generation_preserves_the_uniform_law() {
    // Each run confined to its stratum; pooled across a balanced
    // round-robin the draws must still be U[0,1).
    let master = SimRng::seed_from(99);
    let k = 8u32;
    let samples: Vec<f64> = (0..4000)
        .map(|i| {
            let mut rng = master.split(i as u64);
            rng.set_next_stratum(i as u32 % k, k);
            rng.uniform01()
        })
        .collect();
    let r = ks_one_sample(&samples, |x: f64| x.clamp(0.0, 1.0));
    assert!(
        r.same_distribution(KS_ALPHA),
        "stratified pooled draws are not uniform: D = {}",
        r.statistic
    );
}

fn xgc_cells(scales: &[f64]) -> Vec<GridCell> {
    let app = Application::by_name("XGC").expect("Table I app");
    scales
        .iter()
        .map(|&s| {
            let mut p = SimParams::paper_defaults(ModelKind::B, app);
            p.lead_scale = s;
            GridCell::new(p, &[ModelKind::B, ModelKind::P2]).with_label(format!("XGC@{s}"))
        })
        .collect()
}

fn grid_fingerprint(grid: &pckpt::core::GridResult) -> (Vec<usize>, Vec<[u64; 3]>) {
    let digests = grid
        .cells
        .iter()
        .flat_map(|c| {
            c.aggregates.iter().map(|a| {
                [
                    a.total_hours.mean().to_bits(),
                    a.ft_ratio_pooled().to_bits(),
                    a.failures.sum().to_bits(),
                ]
            })
        })
        .collect();
    (grid.cell_runs.clone(), digests)
}

#[test]
fn every_vr_mode_is_thread_count_invariant_end_to_end() {
    let leads = LeadTimeModel::desh_default();
    let cells = xgc_cells(&[1.5, 1.0, 0.5]);
    let modes = [
        VrConfig {
            antithetic: true,
            ..VrConfig::default()
        },
        VrConfig {
            strata: 4,
            ..VrConfig::default()
        },
        VrConfig {
            antithetic: true,
            strata: 4,
            adaptive: Some(AdaptiveConfig {
                rel_target: 0.02,
                batch: 16,
                max_runs: 64,
                ..AdaptiveConfig::default()
            }),
            ..VrConfig::default()
        },
    ];
    for vr in modes {
        let mut prints = Vec::new();
        for threads in [1, 3, 8] {
            let mut cfg = RunnerConfig::new(16, 61);
            cfg.threads = threads;
            cfg.vr = vr;
            prints.push(grid_fingerprint(&run_grid(&cells, &leads, &cfg)));
        }
        assert_eq!(prints[0], prints[1], "{vr:?} diverged 1 vs 3 threads");
        assert_eq!(prints[0], prints[2], "{vr:?} diverged 1 vs 8 threads");
    }
}

#[test]
fn antithetic_pairing_tightens_the_ci_it_reports() {
    // Drive a one-cell plan directly so we can see per-run values: the
    // paired estimator over antithetic runs must beat the crude
    // estimator over the same number of independent runs on the primary
    // metric's standard error — that correlation is the entire point.
    let leads = LeadTimeModel::desh_default();
    let app = Application::by_name("POP").expect("Table I app");
    let params = SimParams::paper_defaults(ModelKind::B, app);
    let cells = [GridCell::new(params, &[ModelKind::B])];
    let plan = GridPlan::new(&cells, &leads);
    let master = SimRng::seed_from(4242);
    let runs = 64;

    let mut plain_worker = GridWorker::new(&plan);
    let mut plain = Summary::new();
    for run in 0..runs {
        let r = plain_worker.run_unit(&master, run, 0);
        plain.push(r.ledger.total_overhead_secs() / 3600.0);
    }

    let vr = VrConfig {
        antithetic: true,
        ..VrConfig::default()
    };
    let mut anti_worker = GridWorker::with_vr(&plan, vr);
    let mut paired = PairedSummary::new();
    for run in 0..runs {
        let r = anti_worker.run_unit(&master, run, 0);
        paired.push(r.ledger.total_overhead_secs() / 3600.0);
    }

    assert_eq!(paired.pairs() as usize, runs / 2);
    assert!(
        paired.std_err() < plain.std_err(),
        "antithetic pairing must reduce the standard error: paired {} vs plain {}",
        paired.std_err(),
        plain.std_err()
    );
}

#[test]
fn adaptive_allocation_spends_fewer_runs_than_the_fixed_budget() {
    let leads = LeadTimeModel::desh_default();
    let cells = xgc_cells(&[1.5, 0.5]);
    let mut cfg = RunnerConfig::new(96, 61);
    cfg.threads = 2;
    cfg.vr = VrConfig {
        antithetic: true,
        adaptive: Some(AdaptiveConfig {
            rel_target: 0.25,
            batch: 8,
            max_runs: 96,
            ..AdaptiveConfig::default()
        }),
        ..VrConfig::default()
    };
    let grid = run_grid(&cells, &leads, &cfg);
    let budget = 96 * cells.len();
    assert!(
        grid.total_runs() < budget,
        "a loose target must stop early: spent {} of {budget}",
        grid.total_runs()
    );
    for (&r, ci) in grid.cell_runs.iter().zip(&grid.cell_ci_rel) {
        assert!(r >= 16, "at least two batches before stopping");
        if r < 96 {
            assert!(*ci <= 0.25, "a stopped cell met its target (ci {ci})");
        }
    }
}

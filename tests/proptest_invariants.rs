//! Property-based tests over the whole stack: arbitrary (but valid)
//! failure traces and parameter points must never violate the simulator's
//! invariants.

use proptest::prelude::*;

use pckpt::core::CrSim;
use pckpt::prelude::*;

/// Strategy: a hand-rolled failure trace for POP-sized runs.
fn arb_trace(max_failures: usize) -> impl Strategy<Value = FailureTrace> {
    let failure = (
        1.0f64..460.0,  // time_hours (inside POP's 480 h run)
        0u32..126,      // node
        1u32..=10,      // sequence id
        0.6f64..400.0,  // lead seconds
        any::<bool>(),  // predicted
    )
        .prop_map(|(t, node, seq, lead, predicted)| pckpt::failure::FailureEvent {
            time_hours: t,
            node,
            sequence_id: seq,
            lead_secs: lead,
            est_lead_secs: lead,
            predicted,
        });
    let fp = (1.0f64..460.0, 0u32..126, 0.6f64..400.0).prop_map(|(t, node, lead)| Prediction {
        node,
        at_hours: t,
        lead_secs: lead,
        sequence_id: 1,
        genuine: false,
    });
    (
        proptest::collection::vec(failure, 0..=max_failures),
        proptest::collection::vec(fp, 0..=3),
    )
        .prop_map(|(mut failures, mut false_positives)| {
            failures.sort_by(|a, b| a.time_hours.partial_cmp(&b.time_hours).unwrap());
            false_positives.sort_by(|a, b| a.at_hours.partial_cmp(&b.at_hours).unwrap());
            FailureTrace {
                failures,
                false_positives,
            }
        })
}

fn arb_model() -> impl Strategy<Value = ModelKind> {
    prop_oneof![
        Just(ModelKind::B),
        Just(ModelKind::M1),
        Just(ModelKind::M2),
        Just(ModelKind::P1),
        Just(ModelKind::P2),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wall time always decomposes exactly; FT ratio stays in [0, 1];
    /// every failure is either mitigated or paid for.
    #[test]
    fn accounting_invariant_holds_for_arbitrary_traces(
        trace in arb_trace(12),
        model in arb_model(),
    ) {
        let app = Application::by_name("POP").unwrap();
        let params = SimParams::paper_defaults(model, app);
        let leads = LeadTimeModel::desh_default();
        let n_failures = trace.failures.len() as u64;
        let result = CrSim::new(params, trace, &leads).run();
        prop_assert!(result.accounting_residual_secs().abs() < 1.0,
            "residual = {}", result.accounting_residual_secs());
        prop_assert!(result.wall_secs >= result.ideal_secs - 1.0);
        let ft = result.ledger.ft_ratio();
        prop_assert!((0.0..=1.0).contains(&ft));
        prop_assert!(result.ledger.failures_total <= n_failures);
        prop_assert!(result.ledger.mitigated() <= result.ledger.failures_total);
        prop_assert!(result.ledger.failures_predicted <= result.ledger.failures_total);
    }

    /// The base model never mitigates anything; prediction-free traces
    /// never trigger proactive machinery.
    #[test]
    fn base_model_never_acts_proactively(trace in arb_trace(8)) {
        let app = Application::by_name("POP").unwrap();
        let params = SimParams::paper_defaults(ModelKind::B, app);
        let leads = LeadTimeModel::desh_default();
        let result = CrSim::new(params, trace, &leads).run();
        prop_assert_eq!(result.ledger.mitigated(), 0);
        prop_assert_eq!(result.ledger.pckpt_rounds, 0);
        prop_assert_eq!(result.ledger.lm_started, 0);
        prop_assert_eq!(result.ledger.safeguard_ckpts, 0);
    }

    /// More failures (a superset trace) never shortens the run — with a
    /// *static* OCI. (With the adaptive OCI an extra failure can
    /// legitimately help: the rate estimator learns the burst sooner and
    /// tightens the interval before the next failure.)
    #[test]
    fn extra_failures_never_help(
        trace in arb_trace(6),
        extra_t in 10.0f64..400.0,
        extra_node in 0u32..126,
    ) {
        let app = Application::by_name("POP").unwrap();
        let leads = LeadTimeModel::desh_default();
        let mut params = SimParams::paper_defaults(ModelKind::B, app);
        params.dynamic_oci = false;
        let base = CrSim::new(params.clone(), trace.clone(), &leads).run();
        let mut more = trace;
        more.failures.push(pckpt::failure::FailureEvent {
            time_hours: extra_t,
            node: extra_node,
            sequence_id: 1,
            lead_secs: 30.0,
            est_lead_secs: 30.0,
            predicted: false,
        });
        more.failures
            .sort_by(|a, b| a.time_hours.partial_cmp(&b.time_hours).unwrap());
        let worse = CrSim::new(params, more, &leads).run();
        prop_assert!(worse.wall_secs >= base.wall_secs - 1.0,
            "an extra unpredicted failure must not speed the run up: {} vs {}",
            worse.wall_secs, base.wall_secs);
    }

    /// Arena reuse is invisible: a `CrSim` dirtied by one full run and
    /// then `reset_for_run` onto a new trace must produce exactly the
    /// result of a freshly built simulation of that trace — for any
    /// model and any pair of arbitrary traces.
    #[test]
    fn reset_then_run_equals_fresh_build(
        first in arb_trace(8),
        second in arb_trace(8),
        model in arb_model(),
    ) {
        use pckpt::desim::{run_with_queue, EventQueue};
        use pckpt::simrng::SimRng;
        let app = Application::by_name("POP").unwrap();
        let params = SimParams::paper_defaults(model, app);
        let leads = LeadTimeModel::desh_default();
        let budget = 10_000_000;

        let mut queue = EventQueue::new();
        let mut sim = CrSim::new(params.clone(), first, &leads)
            .with_bg_rng(SimRng::seed_from(1));
        run_with_queue(&mut sim, &mut queue, budget);

        queue.reset();
        sim.reset_for_run(&second, SimRng::seed_from(7));
        run_with_queue(&mut sim, &mut queue, budget);
        let reused = sim.result();

        let fresh = CrSim::new(params, second, &leads)
            .with_bg_rng(SimRng::seed_from(7))
            .run();
        prop_assert_eq!(reused, fresh);
    }

    /// OCI formulas: positive, monotone in their arguments, Eq. 2 ≥ Eq. 1.
    #[test]
    fn oci_properties(
        t_bb in 0.1f64..1000.0,
        rate in 1e-4f64..10.0,
        sigma in 0.0f64..0.95,
    ) {
        use pckpt::core::oci::{lm_adjusted_oci_secs, young_oci_secs};
        let young = young_oci_secs(t_bb, rate);
        prop_assert!(young > 0.0);
        let adjusted = lm_adjusted_oci_secs(t_bb, rate, sigma);
        prop_assert!(adjusted >= young);
        // Doubling the checkpoint cost must not shrink the interval.
        prop_assert!(young_oci_secs(t_bb * 2.0, rate) >= young);
        // Doubling the failure rate must not stretch it.
        prop_assert!(young_oci_secs(t_bb, rate * 2.0) <= young);
    }

    /// Lead-time model: survival is a valid decreasing tail function and
    /// sampling respects it.
    #[test]
    fn leadtime_survival_properties(t in 0.0f64..600.0, dt in 0.1f64..100.0) {
        let m = LeadTimeModel::desh_default();
        let s1 = m.survival(t);
        let s2 = m.survival(t + dt);
        prop_assert!((0.0..=1.0).contains(&s1));
        prop_assert!(s2 <= s1 + 1e-12);
    }
}

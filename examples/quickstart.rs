//! Quickstart: compare all five C/R models on one application.
//!
//! ```text
//! cargo run --release --example quickstart [APP] [RUNS]
//! ```
//!
//! Defaults to XGC and 200 Monte-Carlo runs. Prints the overhead
//! breakdown and the FT ratio of each model over *identical* failure
//! traces.

use pckpt::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app_name = args.get(1).map(String::as_str).unwrap_or("XGC");
    let runs: usize = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);

    let Some(app) = Application::by_name(app_name) else {
        eprintln!(
            "unknown application {app_name:?}; pick one of: {}",
            TABLE_I.map(|a| a.name).join(", ")
        );
        std::process::exit(1);
    };

    println!(
        "Simulating {} ({} nodes, {:.0} GB checkpoint/node, {:.0} h compute)",
        app.name,
        app.nodes,
        app.checkpoint_per_node_gb(),
        app.compute_hours
    );
    println!("Failure model: {} (Table III), Aarohi-style predictor, {runs} paired runs\n",
        FailureDistribution::OLCF_TITAN.name);

    let params = SimParams::paper_defaults(ModelKind::B, app);
    let leads = LeadTimeModel::desh_default();
    let campaign = run_models(&params, &ModelKind::ALL, &leads, &RunnerConfig::new(runs, 42));

    let base = campaign.get(ModelKind::B).unwrap();
    println!(
        "{:<6} {:>9} {:>10} {:>11} {:>9} {:>9} {:>8}",
        "model", "ckpt(h)", "recomp(h)", "recovery(h)", "total(h)", "vs B", "FT"
    );
    for model in ModelKind::ALL {
        let a = campaign.get(model).unwrap();
        println!(
            "{:<6} {:>9.2} {:>10.2} {:>11.2} {:>9.2} {:>8.1}% {:>8.2}",
            model.name(),
            a.ckpt_hours.mean(),
            a.recomp_hours.mean(),
            a.recovery_hours.mean(),
            a.total_hours.mean(),
            a.reduction_vs(base),
            a.ft_ratio_pooled(),
        );
    }
    println!(
        "\nLegend: B periodic ckpt only; M1 +safeguard ckpt; M2 +live migration;\n\
         P1 +p-ckpt (this paper); P2 hybrid p-ckpt = p-ckpt + LM (this paper).\n\
         {:.2} failures hit each run on average.",
        base.failures.mean()
    );
}

//! Using the `pckpt-desim` substrate directly: a miniature burst-buffer
//! drain system built from SimPy-style processes, a prioritized resource
//! and a fluid-flow link.
//!
//! Eight nodes finish a checkpoint and drain it to a shared PFS whose
//! ingest is capacity-limited; two "vulnerable" nodes get priority slots
//! (a toy version of the p-ckpt idea at the desim API level).
//!
//! ```text
//! cargo run --release --example des_playground
//! ```

use pckpt::desim::process::{Pid, ProcCtx, Process, ProcessWorld, ResourceId, Step, Wake};
use pckpt::desim::{SimDuration, Simulation};

/// Shared world state: who finished draining, and when.
#[derive(Default)]
struct DrainLog {
    finished: Vec<(String, f64)>,
}

/// A node staging its checkpoint, then draining through the shared PFS
/// ingest (2 concurrent slots), priority by vulnerability.
struct DrainNode {
    name: String,
    pfs_slots: ResourceId,
    priority: i64,
    stage_secs: f64,
    drain_secs: f64,
    phase: u8,
}

impl Process<DrainLog> for DrainNode {
    fn resume(&mut self, shared: &mut DrainLog, ctx: &mut ProcCtx<DrainLog>, _w: Wake) -> Step {
        match self.phase {
            0 => {
                // Stage the checkpoint to the local burst buffer.
                self.phase = 1;
                Step::Sleep(SimDuration::from_secs(self.stage_secs))
            }
            1 => {
                // Queue for a PFS ingest slot; vulnerable nodes first.
                self.phase = 2;
                Step::Acquire(self.pfs_slots, self.priority)
            }
            2 => {
                // Drain through the slot.
                self.phase = 3;
                Step::Sleep(SimDuration::from_secs(self.drain_secs))
            }
            _ => {
                ctx.release(self.pfs_slots);
                shared.finished.push((self.name.clone(), ctx.now().as_secs()));
                Step::Done
            }
        }
    }
}

fn main() {
    let mut world = ProcessWorld::new(DrainLog::default());
    let pfs_slots = world.add_resource(2);
    let mut pids: Vec<Pid> = Vec::new();
    for i in 0..8 {
        let vulnerable = i >= 6; // nodes 6 and 7 have predicted failures
        pids.push(world.spawn(Box::new(DrainNode {
            name: format!("node{i}{}", if vulnerable { " (vulnerable)" } else { "" }),
            pfs_slots,
            // Lower value = served first: vulnerable nodes jump the queue.
            priority: if vulnerable { 0 } else { 10 },
            stage_secs: 5.0,
            drain_secs: 20.0,
            phase: 0,
        })));
    }

    let mut sim = Simulation::new(world);
    sim.run();
    println!("Drain completion order (PFS ingest limited to 2 concurrent nodes):");
    for (name, at) in &sim.model().shared().finished {
        println!("  t={at:>6.1}s  {name}");
    }
    // Nodes 0 and 1 grabbed the two free slots before anyone queued; the
    // priority queue then serves the *waiters* — vulnerable nodes jump
    // ahead of the four healthy nodes that queued at the same instant.
    let order: Vec<&str> = sim
        .model()
        .shared()
        .finished
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    let vuln_rank = order
        .iter()
        .position(|n| n.contains("vulnerable"))
        .expect("vulnerable nodes finish");
    let healthy_waiter_rank = order
        .iter()
        .position(|n| *n == "node2")
        .expect("node2 finishes");
    println!("\nVulnerable waiters overtook healthy waiters: {order:?}");
    assert!(
        vuln_rank < healthy_waiter_rank,
        "queued vulnerable nodes must be served before queued healthy nodes"
    );

    // The same world can be stepped with a horizon for partial inspection.
    let mut world2 = ProcessWorld::new(DrainLog::default());
    let slots = world2.add_resource(2);
    world2.spawn(Box::new(DrainNode {
        name: "solo".into(),
        pfs_slots: slots,
        priority: 0,
        stage_secs: 5.0,
        drain_secs: 20.0,
        phase: 0,
    }));
    let mut sim2 = Simulation::new(world2);
    sim2.run_until(pckpt::desim::SimTime::from_secs(10.0));
    println!(
        "\nPartial run at t=10s: {} events handled, {} process(es) still alive.",
        sim2.events_handled(),
        sim2.model().alive()
    );
}

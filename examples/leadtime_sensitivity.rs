//! Lead-time sensitivity study for a single application.
//!
//! Sweeps the prediction lead-time scale (the ±50 % experiments of
//! Figs. 4/7) for one app and prints how each prediction-driven model's
//! benefit erodes as warnings shrink — the paper's central motivation
//! for p-ckpt.
//!
//! ```text
//! cargo run --release --example leadtime_sensitivity [APP] [RUNS]
//! ```

use pckpt::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app_name = args.get(1).map(String::as_str).unwrap_or("CHIMERA");
    let runs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(150);
    let app = Application::by_name(app_name).unwrap_or_else(|| {
        eprintln!("unknown application {app_name:?}");
        std::process::exit(1);
    });

    let leads = LeadTimeModel::desh_default();
    let models = [
        ModelKind::B,
        ModelKind::M1,
        ModelKind::M2,
        ModelKind::P1,
        ModelKind::P2,
    ];
    println!(
        "Lead-time sensitivity for {} ({} nodes, θ_LM ≈ {:.1}s, p-ckpt phase-1 ≈ {:.1}s)\n",
        app.name,
        app.nodes,
        SimParams::paper_defaults(ModelKind::P2, app).theta_secs(),
        SimParams::paper_defaults(ModelKind::P2, app)
            .io
            .pfs
            .single_node_write_secs(app.checkpoint_per_node()),
    );
    println!(
        "{:>6} | {:>8} {:>8} {:>8} {:>8} | {:>6} {:>6} {:>6} {:>6}",
        "lead", "M1 vs B", "M2 vs B", "P1 vs B", "P2 vs B", "FT M1", "FT M2", "FT P1", "FT P2"
    );
    for (scale, label) in [
        (1.5, "+50%"),
        (1.25, "+25%"),
        (1.0, "0%"),
        (0.75, "-25%"),
        (0.5, "-50%"),
        (0.25, "-75%"),
    ] {
        let mut params = SimParams::paper_defaults(ModelKind::B, app);
        params.lead_scale = scale;
        let c = run_models(&params, &models, &leads, &RunnerConfig::new(runs, 5));
        let b = c.get(ModelKind::B).unwrap();
        let red = |m: ModelKind| c.get(m).unwrap().reduction_vs(b);
        let ft = |m: ModelKind| c.get(m).unwrap().ft_ratio_pooled();
        println!(
            "{:>6} | {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% | {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
            label,
            red(ModelKind::M1),
            red(ModelKind::M2),
            red(ModelKind::P1),
            red(ModelKind::P2),
            ft(ModelKind::M1),
            ft(ModelKind::M2),
            ft(ModelKind::P1),
            ft(ModelKind::P2),
        );
    }
    println!(
        "\nExpected shape (paper Figs. 4 & 7): M1 useless for large apps at any lead;\n\
         M2 collapses once leads shrink below θ; P1/P2 degrade gracefully because\n\
         the prioritized phase-1 commit needs far less warning than a migration."
    );
}

//! Model advisor: the paper's deployment recommendation, executable.
//!
//! "HPC systems with a high fault rate and low lead times should utilize
//! p-ckpt (P1) for large applications with short runtimes ... In
//! contrast, applications with long runtimes should use the hybrid
//! p-ckpt (P2), irrespective of size and failure rate" (Sec. VII).
//!
//! For every Table-I application × Table-III failure distribution, this
//! example runs P1 and P2 head to head, consults the analytical model
//! (Eqs. 4–8), and prints a recommendation.
//!
//! ```text
//! cargo run --release --example model_advisor [RUNS]
//! ```

use pckpt::analysis::analytic::{pckpt_beats_lm, SIGMA_MAX};
use pckpt::core::oci::sigma;
use pckpt::prelude::*;

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let leads = LeadTimeModel::desh_default();

    println!(
        "{:<9} {:<16} {:>7} {:>9} {:>9} {:>7} {:>9}  recommendation",
        "app", "system", "sigma", "P1 vs B", "P2 vs B", "analytic", "winner"
    );
    for app in &TABLE_I {
        for dist in &FailureDistribution::ALL {
            let mut params = SimParams::with_distribution(ModelKind::B, *app, *dist);
            params.model = ModelKind::B;
            let campaign = run_models(
                &params,
                &[ModelKind::B, ModelKind::P1, ModelKind::P2],
                &leads,
                &RunnerConfig::new(runs, 99),
            );
            let p1 = campaign.reduction(ModelKind::P1, ModelKind::B).unwrap();
            let p2 = campaign.reduction(ModelKind::P2, ModelKind::B).unwrap();
            let s = sigma(&leads, &params.predictor, params.theta_secs(), 1.0);
            let analytic = if s < SIGMA_MAX && pckpt_beats_lm(params.lm_transfer_factor, s, 1.0) {
                "p-ckpt"
            } else {
                "LM"
            };
            let winner = if p1 > p2 { "P1" } else { "P2" };
            let recommendation = recommend(app, p1, p2);
            println!(
                "{:<9} {:<16} {:>7.2} {:>8.1}% {:>8.1}% {:>7} {:>9}  {}",
                app.name, dist.name, s, p1, p2, analytic, winner, recommendation
            );
        }
    }
    println!(
        "\nPaper guidance: short-runtime large apps on failure-prone systems → P1;\n\
         long-runtime apps → P2 regardless of size (checkpoint overhead eclipses\n\
         recomputation over long horizons)."
    );
}

fn recommend(app: &Application, p1: f64, p2: f64) -> &'static str {
    let long_running = app.compute_hours >= 360.0;
    if long_running {
        "P2 (long runtime: checkpoint overhead dominates)"
    } else if p1 >= p2 {
        "P1 (short runtime + frequent faults favour p-ckpt)"
    } else {
        "P2 (LM assist still pays off)"
    }
}

//! End-to-end failure-analysis pipeline: synthesize system logs, mine
//! failure chains Desh-style, fit a lead-time model from the *mined*
//! statistics, and drive a C/R simulation with it.
//!
//! This mirrors how the paper's prediction stack is built: the
//! simulation's lead times come from log analysis, not from an assumed
//! distribution.
//!
//! ```text
//! cargo run --release --example failure_pipeline
//! ```

use pckpt::failure::chains::{ChainAnalyzer, LogGenerator};
use pckpt::prelude::*;

fn main() {
    // 1. Six months of synthetic logs for a 400-node system.
    let mut rng = SimRng::seed_from(2022);
    let six_months = 0.5 * 365.25 * 24.0 * 3600.0;
    let generator = LogGenerator::desh_default();
    let (log, truth) = generator.generate(&mut rng, six_months, 400, 900);
    println!(
        "Generated {} log lines over 6 months; {} failures planted.",
        log.len(),
        truth.len()
    );

    // 2. Mine the chains (Desh: phrase sequences culminating in failure).
    let report = ChainAnalyzer::desh_default().analyze(&log);
    println!("Mined {} failure chains.", report.chains.len());
    for (id, n, plot) in report.boxplots() {
        println!(
            "  seq {id:>2}: n={n:<4} lead mean {:>6.1}s  [q1 {:>6.1}, median {:>6.1}, q3 {:>6.1}]",
            plot.mean, plot.q1, plot.median, plot.q3
        );
    }

    // 3. Turn the mined statistics into a lead-time model.
    let labels: Vec<(u32, &'static str)> = LeadTimeModel::desh_default()
        .sequences()
        .iter()
        .map(|s| (s.id, s.label))
        .collect();
    let mined = report.to_leadtime_model(&labels);
    println!(
        "\nMined lead-time model: {} sequences, mixture mean {:.1}s \
         (design ground truth: {:.1}s).",
        mined.len(),
        mined.mean_secs(),
        LeadTimeModel::desh_default().mean_secs()
    );

    // 4. Drive a hybrid p-ckpt campaign with the mined model.
    let app = Application::by_name("S3D").unwrap();
    let params = SimParams::paper_defaults(ModelKind::B, app);
    let campaign = run_models(
        &params,
        &[ModelKind::B, ModelKind::P2],
        &mined,
        &RunnerConfig::new(150, 7),
    );
    let reduction = campaign.reduction(ModelKind::P2, ModelKind::B).unwrap();
    let ft = campaign.get(ModelKind::P2).unwrap().ft_ratio_pooled();
    println!(
        "\nS3D under hybrid p-ckpt with the mined model: {reduction:.1}% less overhead \
         than periodic checkpointing, FT ratio {ft:.2}."
    );
}
